"""Debugfs-style chaos fault capabilities for the service tier.

The Table 1 injector corrupts kernel *text*; the failure modes a
production service actually meets live higher up the stack — an
allocation that fails, a queue that overflows, a disk that fills, an IO
that suddenly takes 8x longer.  This module mirrors the Linux fault
injection capability model (``/sys/kernel/debug/failslab``,
``fail_page_alloc``, ``fail_function``, fail-Nth): each *capability* is
a named fault with ``probability``/``interval``/``times`` knobs and a
*scope* restricting it to one client, one session, or one request
routine, registered in a :class:`ChaosRegistry` the hook sites consult.

Capabilities and their hook sites:

===================  ====================================================
``fail_alloc``       buffer-cache page grant (:meth:`PageCache.get` miss
                     path) raises ``ENOMEM`` before any state changes
``fail_queue``       scheduler admission raises :class:`Backpressure`
``fail_disk_full``   block allocator raises ``ENOSPC``
``slow_io``          disk service time is multiplied by ``factor``
``fail_nth_syscall`` the Nth request a scope executes fails retryably
``backend_fail``     an object-store request fails retryably (a 5xx)
``backend_outage``   an object-store request is rejected as an outage
===================  ====================================================

Determinism is the whole point: every probability draw comes from a
:class:`~repro.util.prng.DeterministicRandom` seeded per capability, and
every counter advances only on scope-matched evaluations, so one
``(seed, workload)`` pair produces one fault pattern — bit for bit, on
either execution engine, at any worker count.

Error-path capabilities (``fail_alloc``, ``fail_disk_full``,
``fail_nth_syscall``) evaluate **only inside a request scope**: they
model per-request resource denials, and recovery or administrative
paths (fsck, warm reboot, flushes) are never denied — chaos must not
break the recovery SLO it exists to measure.  ``fail_queue`` carries
its client explicitly at the admission hook, and ``slow_io`` may fire
anywhere its scope matches, including recovery IO.  The backend
capabilities (``backend_fail``, ``backend_outage``) likewise fire
wherever their scope matches — remote weather does not care what the
machine is doing — except inside ``repro fsck-remote``, which runs
under :meth:`ChaosRegistry.calm` (reconciliation is a recovery path).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.util.prng import DeterministicRandom

#: Every capability the registry knows how to arm.
CAPABILITY_NAMES = (
    "fail_alloc",
    "fail_queue",
    "fail_disk_full",
    "slow_io",
    "fail_nth_syscall",
    "backend_fail",
    "backend_outage",
)

#: Capabilities that only evaluate inside an active request scope (see
#: the module docstring: recovery paths are never denied).
REQUEST_SCOPED = frozenset({"fail_alloc", "fail_disk_full", "fail_nth_syscall"})


@dataclass
class ChaosContext:
    """Where the system currently is: which client/session/routine.

    Pushed by the file service around each request's execution (see
    :meth:`ChaosRegistry.request_scope`); hook sites may override single
    fields (the admission hook passes the client explicitly because no
    request is executing yet).
    """

    client: Optional[int] = None
    session: Optional[int] = None
    routine: Optional[str] = None


@dataclass
class ChaosScope:
    """What a capability is restricted to; ``None`` fields match anything.

    ``client`` is a client id, ``session`` a session sequence number
    (one per :meth:`SessionManager.open_session`, surviving warm
    reboots), ``routine`` a request op name (``"write"``, ``"mkdir"``,
    ...).
    """

    client: Optional[int] = None
    session: Optional[int] = None
    routine: Optional[str] = None

    def matches(self, ctx: Optional[ChaosContext]) -> bool:
        """True when every constrained field equals the context's."""
        if ctx is None:
            return self.client is None and self.session is None and self.routine is None
        return (
            (self.client is None or self.client == ctx.client)
            and (self.session is None or self.session == ctx.session)
            and (self.routine is None or self.routine == ctx.routine)
        )


@dataclass
class ChaosCapability:
    """One armed fault capability with its knobs and counters.

    Knob semantics mirror the Linux fault-injection attributes:

    * ``probability`` — percent chance an otherwise-eligible call fires;
    * ``interval`` — only every ``interval``-th eligible call may fire;
    * ``times`` — remaining fires (``-1`` = unlimited; reaching 0
      exhausts the capability);
    * ``nth`` — ``fail_nth_syscall`` only: the Nth scope-matched call
      fires, once per ``(client, session)`` counter;
    * ``factor`` — ``slow_io`` only: service-time multiplier.
    """

    name: str
    probability: int = 100
    interval: int = 1
    times: int = -1
    nth: int = 0
    factor: float = 8.0
    scope: ChaosScope = field(default_factory=ChaosScope)
    #: Scope-matched evaluations and actual fires (observability; the
    #: per-client split backs the scope-isolation tests).
    calls: int = 0
    fires: int = 0
    fires_by_client: Dict[Optional[int], int] = field(default_factory=dict)
    _nth_counts: Dict[tuple, int] = field(default_factory=dict)
    _rng: Optional[DeterministicRandom] = None

    def validate(self) -> None:
        """Reject knob values outside their documented domains."""
        if self.name not in CAPABILITY_NAMES:
            raise ConfigurationError(f"unknown chaos capability {self.name!r}")
        if not 0 <= self.probability <= 100:
            raise ConfigurationError("probability must be in [0, 100]")
        if self.interval < 1:
            raise ConfigurationError("interval must be >= 1")
        if self.times < -1:
            raise ConfigurationError("times must be -1 (unlimited) or >= 0")
        if self.nth < 0:
            raise ConfigurationError("nth must be >= 0")
        if self.factor <= 0:
            raise ConfigurationError("factor must be positive")

    @property
    def exhausted(self) -> bool:
        """True once a bounded ``times`` budget has been spent."""
        return self.times == 0

    def evaluate(self, ctx: Optional[ChaosContext]) -> bool:
        """Decide whether this capability fires for ``ctx``.

        Counters advance only on scope-matched evaluations, so a
        capability scoped to client A is a pure function of client A's
        call stream — client B's traffic cannot perturb it.
        """
        if self.exhausted or not self.scope.matches(ctx):
            return False
        self.calls += 1
        if self.nth > 0:
            key = (ctx.client, ctx.session) if ctx is not None else (None, None)
            count = self._nth_counts.get(key, 0) + 1
            self._nth_counts[key] = count
            if count != self.nth:
                return False
        elif self.interval > 1 and self.calls % self.interval != 0:
            return False
        if self.probability < 100:
            if self._rng is None or self._rng.randrange(100) >= self.probability:
                return False
        if self.times > 0:
            self.times -= 1
        self.fires += 1
        client = ctx.client if ctx is not None else None
        self.fires_by_client[client] = self.fires_by_client.get(client, 0) + 1
        return True

    def snapshot(self) -> dict:
        """JSON-safe counter summary for reports and digests."""
        return {
            "capability": self.name,
            "calls": self.calls,
            "fires": self.fires,
            "times_left": self.times,
            "fires_by_client": {
                str(client): count
                for client, count in sorted(
                    self.fires_by_client.items(), key=lambda kv: (kv[0] is None, kv[0])
                )
            },
        }


class ChaosRegistry:
    """The armed capability set plus the ambient request context.

    One registry serves one :class:`~repro.system.System` for one run:
    :meth:`System.install_chaos` attaches it to the kernel and disks
    (and re-attaches it across warm reboots), the file service pushes a
    request scope around every syscall, and the hook sites down the
    stack ask :meth:`should_fail`.  Everything is a pure function of
    the construction seed and the (deterministic) call stream.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._caps: Dict[str, List[ChaosCapability]] = {}
        self._context: List[ChaosContext] = []
        self._armed = 0
        self._calm = 0

    # -- arming --------------------------------------------------------

    def enable(
        self,
        name: str,
        *,
        probability: int = 100,
        interval: int = 1,
        times: int = -1,
        nth: int = 0,
        factor: float = 8.0,
        client: Optional[int] = None,
        session: Optional[int] = None,
        routine: Optional[str] = None,
    ) -> ChaosCapability:
        """Arm one capability; multiple arms of one name may coexist
        with different scopes (the *matrix* of the module name)."""
        cap = ChaosCapability(
            name=name,
            probability=probability,
            interval=interval,
            times=times,
            nth=nth,
            factor=factor,
            scope=ChaosScope(client=client, session=session, routine=routine),
        )
        cap.validate()
        cap._rng = DeterministicRandom(
            self.seed ^ (sum(ord(c) << i for i, c in enumerate(name)) * 0x9E3779B9)
            ^ (self._armed * 0x85EBCA6B)
        )
        self._armed += 1
        self._caps.setdefault(name, []).append(cap)
        return cap

    def disable(self, name: str) -> None:
        """Disarm every capability registered under ``name``."""
        self._caps.pop(name, None)

    def capabilities(self) -> List[ChaosCapability]:
        """Every armed capability, in arming order per name."""
        return [cap for name in sorted(self._caps) for cap in self._caps[name]]

    # -- ambient context -----------------------------------------------

    @contextmanager
    def request_scope(
        self,
        *,
        client: Optional[int] = None,
        session: Optional[int] = None,
        routine: Optional[str] = None,
    ):
        """Push the executing request's identity for the hooks below it."""
        self._context.append(
            ChaosContext(client=client, session=session, routine=routine)
        )
        try:
            yield
        finally:
            self._context.pop()

    def current_context(self) -> Optional[ChaosContext]:
        """The innermost active request context, or ``None``."""
        return self._context[-1] if self._context else None

    @contextmanager
    def calm(self):
        """Suppress every capability (no counters advance) for a block.

        Used around *adoption* reads — after a chaos-denied request the
        service reads back what the request partially did to reconcile
        the audit model, and those reads must never themselves be
        chaos-denied (they are bookkeeping, not workload).
        """
        self._calm += 1
        try:
            yield
        finally:
            self._calm -= 1

    # -- evaluation (the hook-site API) --------------------------------

    def _effective_context(
        self, client: Optional[int], routine: Optional[str]
    ) -> Optional[ChaosContext]:
        ctx = self.current_context()
        if client is None and routine is None:
            return ctx
        return ChaosContext(
            client=client if client is not None else (ctx.client if ctx else None),
            session=ctx.session if ctx else None,
            routine=routine if routine is not None else (ctx.routine if ctx else None),
        )

    def should_fail(
        self,
        name: str,
        *,
        client: Optional[int] = None,
        routine: Optional[str] = None,
    ) -> bool:
        """True when any armed ``name`` capability fires right now.

        Request-scoped capabilities decline when no request identity is
        available (neither an ambient scope nor an explicit ``client``) —
        that is what keeps chaos out of the recovery path.
        """
        caps = self._caps.get(name)
        if not caps or self._calm:
            return False
        ctx = self._effective_context(client, routine)
        if ctx is None and name in REQUEST_SCOPED:
            return False
        fired = False
        for cap in caps:
            # Evaluate every armed scope so each keeps its own counters.
            fired = cap.evaluate(ctx) or fired
        return fired

    def io_service_ns(self, service_ns: int) -> int:
        """Apply ``slow_io`` to one disk service time (identity when calm)."""
        caps = self._caps.get("slow_io")
        if not caps or self._calm:
            return service_ns
        ctx = self.current_context()
        for cap in caps:
            if cap.evaluate(ctx):
                service_ns = int(service_ns * cap.factor)
        return service_ns

    # -- observability -------------------------------------------------

    def snapshot(self) -> List[dict]:
        """JSON-safe summary of every capability's counters, in a
        deterministic order (digest material for the chaos campaign)."""
        return [cap.snapshot() for cap in self.capabilities()]
