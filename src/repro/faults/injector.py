"""The fault injector.

Faults are armed against a booted kernel; their consequences unfold as
the workload runs corrupted code.  "Unless otherwise stated, we inject 20
faults for each run to increase the chances that a fault will be
triggered."

Where the simulation's scale differs from the paper's hardware, the knobs
in :class:`FaultParams` compensate and say so:

* hook intervals (kmalloc / bcopy / locks) default far below the paper's
  every-1000-4000-calls because a simulated run executes far fewer calls
  before its operation budget than a real kernel executes in 15 seconds;
* heap and stack bit flips are biased toward *live* bytes (allocated
  blocks; the active stack frames) because our kernel's heap and stack
  are far emptier than a real kernel's — flipping uniformly over the
  region would mostly hit dead space that no real kernel has.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CrashedMachineError, SystemCrash
from repro.faults.types import FaultType
from repro.hw.clock import NS_PER_MS
from repro.isa.encoding import (
    BRANCH_OPS,
    Instruction,
    LOAD_OPS,
    Op,
    OPERATE_OPS,
    STORE_OPS,
)
from repro.util.prng import DeterministicRandom

#: Off-by-one mutations: strict <-> non-strict comparisons/branches.
_OFF_BY_ONE_SWAPS = {
    Op.CMPLT: Op.CMPLE,
    Op.CMPLE: Op.CMPLT,
    Op.CMPULT: Op.CMPULE,
    Op.CMPULE: Op.CMPULT,
    Op.BLT: Op.BLE,
    Op.BLE: Op.BLT,
    Op.BGT: Op.BGE,
    Op.BGE: Op.BGT,
}

_CONDITIONAL_BRANCHES = frozenset(BRANCH_OPS) - {Op.BR}


@dataclass
class FaultParams:
    """Tuning knobs for the injector."""

    #: Faults injected per run for the text/data mutation types.
    faults_per_run: int = 20
    #: Premature-free interval: one fault every N kmalloc calls.  (The
    #: paper used every 1000-4000 malloc calls ≈ one firing per 15 s run;
    #: this interval yields a comparable one-to-few firings per simulated
    #: run.)
    kmalloc_interval: tuple = (40, 160)
    #: Premature-free delay, as in the paper: "sleeps 0-256 ms".
    premature_free_delay_ms: tuple = (0, 256)
    #: Copy-overrun interval: one fault every N bcopy calls.
    bcopy_interval: tuple = (100, 400)
    #: Lock-elision interval: one fault every N lock operations.
    lock_interval: tuple = (20, 80)
    #: Live-stack window (bytes below the stack top) for stack bit flips.
    stack_window: int = 512


@dataclass
class InjectionRecord:
    """Log of what one injection call armed/mutated."""

    fault_type: FaultType
    details: list[str] = field(default_factory=list)

    def add(self, detail: str) -> None:
        self.details.append(detail)


class FaultInjector:
    """Arms one fault type against a kernel."""

    def __init__(self, kernel, seed: int, params: FaultParams | None = None) -> None:
        self.kernel = kernel
        self.rng = DeterministicRandom(seed)
        self.params = params or FaultParams()
        self._pending_frees: list[tuple[int, int]] = []  # (due_ns, addr)
        self._clock_hooked = False

    def _recorder(self):
        """The machine's flight recorder, when attached and running."""
        rec = getattr(self.kernel, "recorder", None)
        return rec if rec is not None and rec.enabled else None

    # -- dispatch ----------------------------------------------------------

    def inject(self, fault_type: FaultType) -> InjectionRecord:
        """Arm one fault type against the kernel; returns what was done."""
        record = InjectionRecord(fault_type)
        handler = {
            FaultType.KERNEL_TEXT: self._inject_text_flips,
            FaultType.KERNEL_HEAP: self._inject_heap_flips,
            FaultType.KERNEL_STACK: self._inject_stack_flips,
            FaultType.DESTINATION_REG: self._inject_dst_reg,
            FaultType.SOURCE_REG: self._inject_src_reg,
            FaultType.DELETE_BRANCH: self._inject_delete_branch,
            FaultType.DELETE_RANDOM_INST: self._inject_delete_inst,
            FaultType.INITIALIZATION: self._inject_initialization,
            FaultType.POINTER: self._inject_pointer,
            FaultType.ALLOCATION: self._inject_allocation,
            FaultType.COPY_OVERRUN: self._inject_copy_overrun,
            FaultType.OFF_BY_ONE: self._inject_off_by_one,
            FaultType.SYNCHRONIZATION: self._inject_synchronization,
        }[fault_type]
        handler(record)
        rec = self._recorder()
        if rec is not None:
            rec.emit(
                "fault", "inject",
                fault_type=str(fault_type.value),
                details=list(record.details),
            )
        return record

    # -- bit flips ---------------------------------------------------------------

    def _inject_text_flips(self, record: InjectionRecord) -> None:
        text = self.kernel.text
        for _ in range(self.params.faults_per_run):
            index = self.rng.randint(1, len(text.words) - 1)  # skip sentinel
            bit = self.rng.randrange(32)
            word = text.read_word(index) ^ (1 << bit)
            text.write_word(index, word)
            record.add(f"text word {index} bit {bit}")

    def _live_heap_targets(self) -> list[tuple[int, int]]:
        """(vaddr, length) spans of live heap bytes, headers included."""
        heap = self.kernel.heap
        spans = []
        for addr, size in heap._live.items():
            spans.append((addr - 16, size))  # header + payload
        return spans

    def _inject_heap_flips(self, record: InjectionRecord) -> None:
        spans = self._live_heap_targets()
        for _ in range(self.params.faults_per_run):
            if not spans:
                return
            vaddr, size = spans[self.rng.randrange(len(spans))]
            offset = self.rng.randrange(size)
            paddr = self.kernel.mmu.translate(vaddr + offset, write=False)
            bit = self.rng.randrange(8)
            self.kernel.memory.flip_bit(paddr, bit)
            record.add(f"heap {vaddr + offset:#x} bit {bit}")

    def _inject_stack_flips(self, record: InjectionRecord) -> None:
        stack_top = self.kernel.klib.stack_top
        window = self.params.stack_window
        for _ in range(self.params.faults_per_run):
            vaddr = stack_top - self.rng.randint(1, window)
            paddr = self.kernel.mmu.translate(vaddr, write=False)
            bit = self.rng.randrange(8)
            self.kernel.memory.flip_bit(paddr, bit)
            record.add(f"stack {vaddr:#x} bit {bit}")

    # -- instruction-level faults -------------------------------------------------

    def _instruction_indices(self, predicate) -> list[int]:
        text = self.kernel.text
        return [
            index
            for index in range(1, len(text.words))
            if predicate(text.read_instruction(index))
        ]

    def _mutate_instructions(self, record, predicate, mutate, label: str) -> None:
        candidates = self._instruction_indices(predicate)
        if not candidates:
            return
        for _ in range(self.params.faults_per_run):
            index = self.rng.choice(candidates)
            inst = self.kernel.text.read_instruction(index)
            mutated = mutate(inst)
            if mutated is not None:
                self.kernel.text.write_instruction(index, mutated)
                record.add(f"{label} at word {index}: {inst} -> {mutated}")

    def _inject_dst_reg(self, record: InjectionRecord) -> None:
        """Corrupt assignment destinations (paper: "corrupt assignment
        statements by changing the ... destination register")."""

        def mutate(inst: Instruction) -> Instruction | None:
            new_reg = self.rng.randrange(31)  # exclude r31 (a no-op dest)
            op = inst.op
            if op in OPERATE_OPS:
                return Instruction(inst.opcode, inst.ra, inst.rb, rc=new_reg)
            if op in (Op.LDA, Op.LDB, Op.LDQ):
                return Instruction(inst.opcode, new_reg, inst.rb, imm=inst.imm)
            return None

        self._mutate_instructions(
            record,
            lambda i: i.writes_register() is not None and not i.is_branch,
            mutate,
            "dst reg",
        )

    def _inject_src_reg(self, record: InjectionRecord) -> None:
        def mutate(inst: Instruction) -> Instruction | None:
            new_reg = self.rng.randrange(32)
            op = inst.op
            if op in OPERATE_OPS:
                if self.rng.random() < 0.5:
                    return Instruction(inst.opcode, new_reg, inst.rb, rc=inst.rc)
                return Instruction(inst.opcode, inst.ra, new_reg, rc=inst.rc)
            if op in LOAD_OPS or op in STORE_OPS or op is Op.LDA:
                return Instruction(inst.opcode, inst.ra, new_reg, imm=inst.imm)
            return None

        self._mutate_instructions(
            record,
            lambda i: i.op in OPERATE_OPS or i.is_load or i.is_store or i.op is Op.LDA,
            mutate,
            "src reg",
        )

    def _inject_delete_branch(self, record: InjectionRecord) -> None:
        nop = Instruction(Op.NOP, 31, 31)
        self._mutate_instructions(
            record,
            lambda i: i.op in _CONDITIONAL_BRANCHES,
            lambda i: nop,
            "delete branch",
        )

    def _inject_delete_inst(self, record: InjectionRecord) -> None:
        nop = Instruction(Op.NOP, 31, 31)
        self._mutate_instructions(
            record,
            lambda i: i.op not in (Op.HALT, Op.NOP),
            lambda i: nop,
            "delete inst",
        )

    def _inject_initialization(self, record: InjectionRecord) -> None:
        """Delete register initialisation in routine prologues."""
        text = self.kernel.text
        nop = Instruction(Op.NOP, 31, 31)
        prologue: list[int] = []
        for routine in text.routines.values():
            for index in range(
                routine.start_index, min(routine.start_index + 6, routine.start_index + routine.num_words)
            ):
                inst = text.read_instruction(index)
                if inst.writes_register() is not None and not inst.is_branch:
                    prologue.append(index)
        if not prologue:
            return
        for _ in range(self.params.faults_per_run):
            index = self.rng.choice(prologue)
            record.add(f"initialization: NOP at word {index}")
            text.write_instruction(index, nop)

    def _inject_pointer(self, record: InjectionRecord) -> None:
        """Find a load/store base register and delete the most recent
        prior instruction that modifies it (not the stack pointer)."""
        text = self.kernel.text
        nop = Instruction(Op.NOP, 31, 31)
        candidates: list[int] = []
        for index in range(1, len(text.words)):
            inst = text.read_instruction(index)
            if (inst.is_load or inst.is_store) and inst.rb not in (30, 31):
                candidates.append(index)
        if not candidates:
            return
        for _ in range(self.params.faults_per_run):
            use_index = self.rng.choice(candidates)
            base = text.read_instruction(use_index).rb
            routine = text.routine_at_index(use_index)
            start = routine.start_index if routine else 1
            for index in range(use_index - 1, start - 1, -1):
                inst = text.read_instruction(index)
                if inst.writes_register() == base:
                    text.write_instruction(index, nop)
                    record.add(f"pointer: NOP setup of r{base} at word {index}")
                    break

    def _inject_off_by_one(self, record: InjectionRecord) -> None:
        def mutate(inst: Instruction) -> Instruction | None:
            swapped = _OFF_BY_ONE_SWAPS.get(inst.op)
            if swapped is None:
                return None
            return Instruction(swapped, inst.ra, inst.rb, rc=inst.rc, imm=inst.imm)

        self._mutate_instructions(
            record, lambda i: i.op in _OFF_BY_ONE_SWAPS, mutate, "off-by-one"
        )

    # -- hook-based faults -------------------------------------------------------------

    def _inject_allocation(self, record: InjectionRecord) -> None:
        """kmalloc occasionally starts a "thread" that sleeps 0-256 ms and
        then prematurely frees the new block."""
        interval = self.rng.randint(*self.params.kmalloc_interval)
        record.add(f"allocation fault armed: every {interval} kmallocs")
        counter = [0]

        def hook(addr: int, size: int) -> None:
            counter[0] += 1
            if counter[0] % interval:
                return
            delay_ms = self.rng.randint(*self.params.premature_free_delay_ms)
            due = self.kernel.clock.now_ns + delay_ms * NS_PER_MS
            self._pending_frees.append((due, addr))
            self._ensure_clock_hook()

        self.kernel.heap.alloc_hook = hook

    def _ensure_clock_hook(self) -> None:
        if self._clock_hooked:
            return
        self._clock_hooked = True
        self.kernel.clock.on_advance(self._process_pending_frees)

    def _process_pending_frees(self, now_ns: int) -> None:
        if self.kernel.machine.crashed or not self._pending_frees:
            return
        due = [item for item in self._pending_frees if item[0] <= now_ns]
        if not due:
            return
        self._pending_frees = [item for item in self._pending_frees if item[0] > now_ns]
        for _, addr in due:
            if self.kernel.heap.is_live(addr):
                rec = self._recorder()
                if rec is not None:
                    rec.emit("fault", "premature-free", addr=addr)
                try:
                    self.kernel.heap.kfree(addr)  # the premature free
                except (SystemCrash, CrashedMachineError):
                    raise
                except Exception:
                    pass

    def _inject_copy_overrun(self, record: InjectionRecord) -> None:
        """bcopy occasionally copies more than asked.  Overrun length
        distribution straight from the paper: 50% one byte, 44% 2-1024
        bytes, 6% 2-4 KB."""
        interval = self.rng.randint(*self.params.bcopy_interval)
        record.add(f"copy overrun armed: every {interval} bcopys")
        counter = [0]

        def hook(length: int) -> int:
            counter[0] += 1
            if counter[0] % interval:
                return length
            roll = self.rng.random()
            if roll < 0.50:
                extra = 1
            elif roll < 0.94:
                extra = self.rng.randint(2, 1024)
            else:
                extra = self.rng.randint(2048, 4096)
            rec = self._recorder()
            if rec is not None:
                rec.emit("fault", "overrun", length=length, extra=extra)
            return length + extra

        self.kernel.klib.overrun_hook = hook

    def _inject_synchronization(self, record: InjectionRecord) -> None:
        """Lock acquire/release occasionally returns without doing it."""
        interval = self.rng.randint(*self.params.lock_interval)
        record.add(f"lock elision armed: p=1/{interval} per lock op")
        rng = self.rng.fork(0x10CC)

        def hook(lock, op: str) -> bool:
            # Probabilistic rather than every-Nth: a strict counter would
            # only ever land on acquires (acquire/release strictly
            # alternate), and elided releases — the deadlock maker — would
            # never occur.
            elide = rng.randrange(interval) == 0
            if elide:
                rec = self._recorder()
                if rec is not None:
                    rec.emit("fault", "lock-elision", op=op)
            return elide

        self.kernel.locks.elision_hook = hook
