"""Fault taxonomy: the 13 rows of Table 1."""

from __future__ import annotations

import enum


class FaultType(enum.Enum):
    """One per Table 1 row, in the paper's order."""

    KERNEL_TEXT = "kernel text"
    KERNEL_HEAP = "kernel heap"
    KERNEL_STACK = "kernel stack"
    DESTINATION_REG = "destination reg."
    SOURCE_REG = "source reg."
    DELETE_BRANCH = "delete branch"
    DELETE_RANDOM_INST = "delete random inst."
    INITIALIZATION = "initialization"
    POINTER = "pointer"
    ALLOCATION = "allocation"
    COPY_OVERRUN = "copy overrun"
    OFF_BY_ONE = "off-by-one"
    SYNCHRONIZATION = "synchronization"


#: The paper's three fault categories.
FAULT_CATEGORIES = {
    "bit flips": (
        FaultType.KERNEL_TEXT,
        FaultType.KERNEL_HEAP,
        FaultType.KERNEL_STACK,
    ),
    "low-level software": (
        FaultType.DESTINATION_REG,
        FaultType.SOURCE_REG,
        FaultType.DELETE_BRANCH,
        FaultType.DELETE_RANDOM_INST,
    ),
    "high-level software": (
        FaultType.INITIALIZATION,
        FaultType.POINTER,
        FaultType.ALLOCATION,
        FaultType.COPY_OVERRUN,
        FaultType.OFF_BY_ONE,
        FaultType.SYNCHRONIZATION,
    ),
}

ALL_FAULT_TYPES = tuple(FaultType)
