"""Fault injection: the paper's 13 fault types (section 3.1).

Three categories, injected at the level where they are mechanistic:

* **Bit flips** in kernel text, heap and stack — literal bit flips in the
  simulated physical memory holding those regions.
* **Instruction-level faults** (destination/source register corruption,
  deleted branches, deleted random instructions) — decode/mutate/re-encode
  of real instruction words in the kernel text image; the corrupted
  routine thereafter runs on the interpreter, and whatever the mutated
  code does — wild stores, infinite loops, illegal fetches — simply
  happens.
* **High-level programming-error imitations** (initialization, pointer,
  allocation management, copy overrun, off-by-one, synchronization) —
  text mutations where the paper defines them that way, and hooks in
  kmalloc / bcopy / the lock manager where the paper patched those
  procedures.

Faults are *armed* by :class:`~repro.faults.injector.FaultInjector`; their
consequences unfold as the workload executes the corrupted code.

A second, orthogonal fault family lives in
:mod:`repro.faults.capabilities`: debugfs-style *chaos capabilities*
(allocation failure, queue overflow, disk-full, slow IO, fail-Nth) with
probability/interval/times knobs and per-client/session/routine scoping,
aimed at the service tier rather than kernel text.
"""

from repro.faults.types import FaultType, FAULT_CATEGORIES
from repro.faults.injector import FaultInjector, InjectionRecord
from repro.faults.capabilities import (
    CAPABILITY_NAMES,
    REQUEST_SCOPED,
    ChaosCapability,
    ChaosContext,
    ChaosRegistry,
    ChaosScope,
)

__all__ = [
    "FaultType",
    "FAULT_CATEGORIES",
    "FaultInjector",
    "InjectionRecord",
    "CAPABILITY_NAMES",
    "REQUEST_SCOPED",
    "ChaosCapability",
    "ChaosContext",
    "ChaosRegistry",
    "ChaosScope",
]
