"""RioFileCache: assembles registry + protection + guard onto a kernel."""

from __future__ import annotations

from repro.core.config import ProtectionMode, RioConfig
from repro.core.guard import RioGuard
from repro.core.protection import ProtectionManager
from repro.core.registry import Registry
from repro.errors import ConfigurationError


class RioFileCache:
    """The reliable-file-cache machinery for one booted kernel.

    Usage::

        kernel = Kernel(machine)
        rio = RioFileCache(kernel, RioConfig.with_protection())
        kernel.init_caches(guard=rio.guard)

    A non-Rio (disk-based) system simply skips this object and boots with
    the null guard.
    """

    def __init__(self, kernel, config: RioConfig | None = None) -> None:
        self.kernel = kernel
        self.config = config or RioConfig()
        frames = kernel.registry_frames
        if not frames:
            raise ConfigurationError("kernel reserved no registry frames")
        # The reserved frames are contiguous at the top of memory.
        base_paddr = frames[0] * kernel.page_size
        region_bytes = len(frames) * kernel.page_size
        self.protection = ProtectionManager(kernel, self.config)
        self.registry = Registry(
            kernel.bus,
            base_paddr,
            region_bytes,
            window=self.protection.registry_window,
        )
        self.guard = RioGuard(kernel, self.registry, self.protection, self.config)
        self.registry.format()
        self.protection.install(frames)
        kernel.reliability_writes_off = self.config.reliability_writes_off
        if self.config.reliability_writes_off:
            # "we modify the panic procedure to avoid writing dirty data
            # back to disk before a crash" (section 2.3).
            kernel.config.panic_syncs_dirty = False

    @property
    def protected(self) -> bool:
        return self.config.protection is not ProtectionMode.NONE
