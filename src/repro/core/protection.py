"""Protection of the file cache against wild kernel stores (section 2.1).

Three modes:

* ``NONE`` — every method is a no-op ("Rio without protection").
* ``VM_KSEG`` — buffer cache pages are write-protected through their page
  table entries; UBC pages (physically addressed) are protected by setting
  the ABOX control bit so *all* KSEG accesses map through the TLB, then
  write-protecting the KSEG entries.  "Disabling KSEG addresses in this
  manner adds essentially no overhead."
* ``CODE_PATCHING`` — for CPUs that cannot force physical addresses
  through the TLB: the kernel text is rewritten at install time with an
  address check in front of every store (see
  :mod:`repro.isa.analysis.patch`) and executes on the interpreter, at a
  cost of a few extra instructions per store (measured at 20-50% overall
  slowdown in the paper).  The inline check guards the *fixed* protected
  region — the registry frames sequestered at the top of physical memory;
  pages whose protection toggles dynamically (cache pages inside write
  windows) are enforced by the bus store-checker, standing in for the
  patched kernel's protected-page table lookup.

In every mode, legitimate file cache writes happen inside *windows*: the
page is made writable, written, and re-protected.  "The only time a file
cache page is vulnerable to an unauthorized store is while it is being
written, and disks have the same vulnerability."
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.config import ProtectionMode, RioConfig
from repro.errors import ProtectionTrap
from repro.fs.cache import CachePage
from repro.hw.bus import AccessContext, KERNEL_CONTEXT
from repro.hw.mmu import KSEG_BASE
from repro.isa.analysis.patch import CodePatcher, RoutinePatchReport
from repro.isa.routines import build_kernel_text


class ProtectionManager:
    """Applies and lifts write protection over file cache pages."""

    def __init__(self, kernel, config: RioConfig) -> None:
        self.kernel = kernel
        self.config = config
        self.mode = config.protection
        self._registry_pfns: list[int] = []
        # Code-patching bookkeeping: which pages are currently protected.
        self._patched_vpns: set[int] = set()
        self._patched_pfns: set[int] = set()
        #: Per-routine reports from the binary rewriting pass.
        self.patch_reports: dict[str, RoutinePatchReport] = {}
        #: The inline checks' threshold: lowest KSEG address of the
        #: sequestered registry region.
        self.patch_threshold: int | None = None
        self.stat_windows = 0
        self.stat_patch_traps = 0

    def _recorder(self):
        """The machine's flight recorder, when one is attached and live."""
        rec = getattr(self.kernel, "recorder", None)
        return rec if rec is not None and rec.enabled else None

    # -- installation ----------------------------------------------------

    def install(self, registry_pfns: list[int]) -> None:
        """Engage the mechanism on the booted kernel."""
        self._registry_pfns = list(registry_pfns)
        rec = self._recorder()
        if rec is not None:
            rec.emit("prot", "install", mode=self.mode.name, registry_pfns=len(registry_pfns))
        if self.mode is ProtectionMode.NONE:
            return
        if self.mode is ProtectionMode.VM_KSEG:
            # The ABOX control-register bit: map KSEG through the TLB.
            self.kernel.mmu.kseg_through_tlb = True
        else:
            self._install_code_patching()
        for pfn in self._registry_pfns:
            self._set_pfn_protected(pfn, True)

    def _install_code_patching(self) -> None:
        """Rewrite the kernel text with inline store checks.

        Rebuilds the text image through the binary patcher (so every
        routine thereafter executes on the interpreter — there are no
        natives for patched text), publishes the protection threshold in
        a descriptor quadword the interpreter hands to each call in
        ``gp``, and keeps the bus store-checker for the dynamically
        protected cache pages.
        """
        kernel = self.kernel
        patcher = CodePatcher(optimize=self.config.code_patch_optimize)
        kernel.install_kernel_text(build_kernel_text(transform=patcher))
        self.patch_reports = patcher.reports
        self.patch_threshold = (
            KSEG_BASE + min(self._registry_pfns) * kernel.page_size
        )
        descriptor = kernel.heap.kmalloc(8)
        kernel.bus.store_u64(descriptor, self.patch_threshold, KERNEL_CONTEXT)
        kernel.interp.global_pointer = descriptor
        kernel.bus.store_checker = self._check_store

    # -- primitive protection toggles ---------------------------------------

    def _set_pfn_protected(self, pfn: int, protected: bool) -> None:
        if self.mode is ProtectionMode.VM_KSEG:
            self.kernel.mmu.set_kseg_writable(pfn, not protected)
        elif self.mode is ProtectionMode.CODE_PATCHING:
            (self._patched_pfns.add if protected else self._patched_pfns.discard)(pfn)

    def _set_vpn_protected(self, vpn: int, protected: bool) -> None:
        if self.mode is ProtectionMode.VM_KSEG:
            self.kernel.mmu.set_writable(vpn, not protected)
        elif self.mode is ProtectionMode.CODE_PATCHING:
            (self._patched_vpns.add if protected else self._patched_vpns.discard)(vpn)

    def _set_page_protected(self, page: CachePage, protected: bool) -> None:
        if self.mode is ProtectionMode.NONE:
            return
        if page.kind == "data":
            self._set_pfn_protected(page.pfn, protected)
        else:
            self._set_vpn_protected(page.vaddr // self.kernel.page_size, protected)

    # -- public interface used by the guard ------------------------------------

    def protect_page(self, page: CachePage) -> None:
        self._set_page_protected(page, True)

    def unprotect_page(self, page: CachePage) -> None:
        self._set_page_protected(page, False)

    @contextmanager
    def page_window(self, page: CachePage):
        """Open a write window over one page.

        Deliberately *not* exception-safe: if the system crashes while the
        window is open, the page stays writable — the same vulnerability a
        disk sector being written at crash time has.
        """
        self.stat_windows += 1
        rec = self._recorder()
        if rec is not None:
            rec.emit("prot", "page-window", page=str(page.key), kind=page.kind)
        self.unprotect_page(page)
        yield
        self.protect_page(page)

    @contextmanager
    def registry_window(self):
        self.stat_windows += 1
        rec = self._recorder()
        if rec is not None:
            rec.emit("prot", "registry-window")
        for pfn in self._registry_pfns:
            self._set_pfn_protected(pfn, False)
        yield
        for pfn in self._registry_pfns:
            self._set_pfn_protected(pfn, True)

    # -- the code-patching store checker -------------------------------------------

    def _check_store(self, vaddr: int, length: int, ctx: AccessContext) -> None:
        """The check compiled in front of every kernel store: is the target
        inside the file cache (or registry) without a window open?"""
        page_size = self.kernel.page_size
        if vaddr >= KSEG_BASE:
            paddr = vaddr - KSEG_BASE
            first = paddr // page_size
            last = (paddr + max(length, 1) - 1) // page_size
            for pfn in range(first, last + 1):
                if pfn in self._patched_pfns:
                    self.stat_patch_traps += 1
                    rec = self._recorder()
                    if rec is not None:
                        rec.emit("trap", "patch", pfn=pfn, address=vaddr)
                    raise ProtectionTrap(
                        f"code patch: store to protected frame {pfn}", address=vaddr
                    )
        else:
            first = vaddr // page_size
            last = (vaddr + max(length, 1) - 1) // page_size
            for vpn in range(first, last + 1):
                if vpn in self._patched_vpns:
                    self.stat_patch_traps += 1
                    rec = self._recorder()
                    if rec is not None:
                        rec.emit("trap", "patch", vpn=vpn, address=vaddr)
                    raise ProtectionTrap(
                        f"code patch: store to protected page {vpn}", address=vaddr
                    )
