"""RioGuard: wires the registry, protection and shadow paging into the
page caches via the :class:`~repro.fs.cache.CacheGuard` interface.

Per cache event:

* **attach** — allocate a registry slot, record (physical address, file
  id, offset, size, disk block), protect the page.
* **begin write** — open a protection window.  For metadata pages with
  shadowing on, copy the page to a shadow frame and atomically point the
  registry entry at the shadow (the pre-image), so a crash mid-update
  recovers a consistent version (section 2.3).  For data pages, set the
  CHANGING flag — blocks being modified at crash time "cannot be
  identified as corrupt or intact by the checksum mechanism".
* **end write** — recompute the detection checksum, point the registry
  back at the (now updated) original, clear CHANGING, close the window.
* **dirty / placement changes** — keep the registry entry current.  "Registry
  information changes relatively infrequently during normal operation, so
  the overhead of maintaining it is low."
"""

from __future__ import annotations

from repro.core.config import RioConfig
from repro.core.protection import ProtectionManager
from repro.core.registry import (
    FLAG_CHANGING,
    FLAG_DIRTY,
    FLAG_META,
    FLAG_VALID,
    Registry,
    RegistryEntry,
)
from repro.errors import ConfigurationError
from repro.fs.cache import CacheGuard, CachePage
from repro.util.checksum import fletcher32


class RioGuard(CacheGuard):
    """The guard installed on both caches of a Rio system."""

    def __init__(self, kernel, registry: Registry, protection: ProtectionManager, config: RioConfig) -> None:
        self.kernel = kernel
        self.registry = registry
        self.protection = protection
        self.config = config
        #: page key -> (shadow_pfn, original window exit) for in-flight
        #: shadowed metadata writes.
        self._shadows: dict[tuple, int] = {}
        self._open_windows: dict[tuple, object] = {}

    # -- helpers ----------------------------------------------------------

    def _page_size(self) -> int:
        return self.kernel.page_size

    def _entry_for(self, page: CachePage) -> RegistryEntry:
        flags = FLAG_VALID
        if page.dirty:
            flags |= FLAG_DIRTY
        if page.kind == "meta":
            flags |= FLAG_META
        return RegistryEntry(
            slot=page.registry_slot,
            phys_addr=page.pfn * self._page_size(),
            dev=page.dev,
            ino=page.file_id.ino if page.file_id else 0,
            file_offset=page.file_offset,
            size=self._page_size(),
            flags=flags,
            disk_block=page.disk_block,
            checksum=page.checksum,
        )

    def _page_checksum(self, page: CachePage) -> int:
        return fletcher32(
            self.kernel.memory.read(page.pfn * self._page_size(), self._page_size())
        )

    # -- CacheGuard interface ------------------------------------------------

    def on_attach(self, page: CachePage) -> None:
        page.registry_slot = self.registry.alloc_slot()
        if self.config.maintain_checksums:
            page.checksum = self._page_checksum(page)
        self.registry.write_entry(self._entry_for(page))
        self.protection.protect_page(page)

    def on_detach(self, page: CachePage) -> None:
        if page.registry_slot is None:
            raise ConfigurationError("detach of unregistered page")
        self.registry.free_slot(page.registry_slot)
        page.registry_slot = None
        self.protection.unprotect_page(page)

    def _recorder(self):
        rec = getattr(self.kernel, "recorder", None)
        return rec if rec is not None and rec.enabled else None

    def begin_write(self, page: CachePage) -> None:
        window = self.protection.page_window(page)
        window.__enter__()
        self._open_windows[page.key] = window
        if page.kind == "meta" and self.config.shadow_metadata:
            # Shadow page: preserve the pre-image and point the registry
            # at it for the duration of the update.
            shadow_pfn = self.kernel.frames.alloc()
            page_size = self._page_size()
            pre_image = self.kernel.memory.read(page.pfn * page_size, page_size)
            self.kernel.memory.write(shadow_pfn * page_size, pre_image)
            self._shadows[page.key] = shadow_pfn
            rec = self._recorder()
            if rec is not None:
                rec.emit(
                    "shadow", "begin-write",
                    page=str(page.key), shadow_pfn=shadow_pfn, pfn=page.pfn,
                )
            self.registry.update_fields(
                page.registry_slot, phys_addr=shadow_pfn * page_size
            )
        else:
            self.registry.update_flags(page.registry_slot, set_flags=FLAG_CHANGING)

    def end_write(self, page: CachePage) -> None:
        if self.config.maintain_checksums:
            page.checksum = self._page_checksum(page)
        rec = self._recorder()
        if rec is not None:
            # The page-content checksum is engine-independent and is what
            # lets forensics see *data* divergence at page granularity.
            rec.emit(
                "shadow", "end-write",
                page=str(page.key),
                shadowed=page.key in self._shadows,
                checksum=page.checksum,
            )
        shadow_pfn = self._shadows.pop(page.key, None)
        if shadow_pfn is not None:
            # Atomically point the registry back at the updated original.
            self.registry.update_fields(
                page.registry_slot,
                phys_addr=page.pfn * self._page_size(),
                checksum=page.checksum,
            )
            self.kernel.frames.free(shadow_pfn)
        else:
            self.registry.update_fields(page.registry_slot, checksum=page.checksum)
            self.registry.update_flags(page.registry_slot, clear_flags=FLAG_CHANGING)
        window = self._open_windows.pop(page.key, None)
        if window is not None:
            window.__exit__(None, None, None)

    def on_dirty_changed(self, page: CachePage) -> None:
        if page.registry_slot is None:
            return
        if page.dirty:
            self.registry.update_flags(page.registry_slot, set_flags=FLAG_DIRTY)
        else:
            self.registry.update_flags(page.registry_slot, clear_flags=FLAG_DIRTY)

    def on_placement_changed(self, page: CachePage) -> None:
        if page.registry_slot is None:
            return
        self.registry.update_fields(
            page.registry_slot,
            dev=page.dev,
            ino=page.file_id.ino if page.file_id else 0,
            file_offset=page.file_offset,
            disk_block=page.disk_block,
        )
