"""Rio: the paper's contribution — a file cache that survives OS crashes.

Three cooperating pieces (sections 2.1-2.3):

* :mod:`~repro.core.registry` — a protected, fixed-location region of
  physical memory recording, for every file cache buffer, everything a
  rebooting kernel needs to find, identify and restore it (physical
  address, file id, offset, size, dirty/changing flags, disk block for
  metadata, detection checksum).
* :mod:`~repro.core.protection` — write-protects file cache pages and
  forces KSEG through the TLB (or falls back to code patching), turning
  wild stores into traps that halt the system before corruption spreads.
* :mod:`~repro.core.warm_reboot` — on reboot: dump physical memory to
  swap, restore metadata to disk from the registry (before fsck), then
  restore UBC file data through normal system calls.

:class:`~repro.core.rio.RioFileCache` wires these into a kernel via the
cache-guard interface; :class:`~repro.core.config.RioConfig` selects the
paper's three evaluated systems (disk-based, Rio without protection, Rio
with protection) plus the code-patching variant.
"""

from repro.core.config import ProtectionMode, RioConfig
from repro.core.registry import (
    Registry,
    RegistryEntry,
    FLAG_VALID,
    FLAG_DIRTY,
    FLAG_CHANGING,
    FLAG_META,
)
from repro.core.protection import ProtectionManager
from repro.core.guard import RioGuard
from repro.core.rio import RioFileCache
from repro.core.warm_reboot import WarmRebootReport, dump_and_recover_metadata, restore_ubc

__all__ = [
    "ProtectionMode",
    "RioConfig",
    "Registry",
    "RegistryEntry",
    "FLAG_VALID",
    "FLAG_DIRTY",
    "FLAG_CHANGING",
    "FLAG_META",
    "ProtectionManager",
    "RioGuard",
    "RioFileCache",
    "WarmRebootReport",
    "dump_and_recover_metadata",
    "restore_ubc",
]
