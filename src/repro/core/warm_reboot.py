"""Warm reboot (section 2.2).

Two-step flow, exactly as in the paper:

1. **Early boot, before VM / file system initialisation**: dump all of
   physical memory to the swap partition ("while a standard crash dump
   often fails, this dump is performed on a healthy, booting system and
   will always work"), then restore *metadata* buffers to their disk
   blocks using the disk address stored in the registry — "so that the
   file system is intact before being checked for consistency by fsck".

2. **After the system is completely booted**: a user-level process reads
   the dump and restores the UBC's dirty file pages "using normal system
   calls such as open and write" (here: the file system's by-inode write
   interface, since inode numbers are what the registry records).

The checksum audit of the dump image — detection, not recovery — also
lives here so reliability campaigns can distinguish intact, corrupt and
mid-write ("changing") buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.registry import (
    RegistryEntry,
    find_registry_in_image,
    read_entries_from_image,
)
from repro.disk.swap import SwapPartition
from repro.fs.types import BLOCK_SIZE, SECTORS_PER_BLOCK
from repro.hw.machine import Machine
from repro.util.checksum import fletcher32


@dataclass
class WarmRebootReport:
    """Everything the campaign needs to know about one warm reboot."""

    registry_found: bool = False
    dumped_bytes: int = 0
    valid_entries: int = 0
    metadata_restored: int = 0
    ubc_entries: int = 0
    ubc_restored: int = 0
    ubc_skipped: int = 0
    changing_entries: int = 0
    #: Registry slots whose page bytes no longer match their checksum —
    #: direct corruption caught by the detection apparatus.
    checksum_mismatches: list[int] = field(default_factory=list)


def audit_checksums(image: bytes, entries: list[RegistryEntry], report: WarmRebootReport) -> None:
    """Compare each valid entry's recorded checksum against the dump."""
    for entry in entries:
        if entry.changing:
            # Mid-write at crash time: cannot be classified by checksum.
            report.changing_entries += 1
            continue
        page = image[entry.phys_addr : entry.phys_addr + entry.size]
        if fletcher32(page) != entry.checksum:
            report.checksum_mismatches.append(entry.slot)


def dump_and_recover_metadata(
    machine: Machine,
    swap: SwapPartition,
    block_devices: dict[int, object],
    *,
    audit: bool = True,
) -> tuple[bytes, list[RegistryEntry], WarmRebootReport]:
    """Step 1 of the warm reboot (run on the freshly reset machine,
    before any kernel state is rebuilt over the old memory image)."""
    report = WarmRebootReport()
    rec = getattr(machine, "recorder", None)
    if rec is None or not rec.enabled:
        rec = None
    image = machine.memory.dump_image()
    report.dumped_bytes = len(image)
    swap.dump_memory_image(image)
    if rec is not None:
        rec.emit("reboot", "dump", bytes=report.dumped_bytes)

    location = find_registry_in_image(image, machine.memory.page_size)
    if location is None:
        if rec is not None:
            rec.emit("reboot", "registry-scan", found=False)
        return image, [], report
    report.registry_found = True
    base_offset, capacity = location
    entries = read_entries_from_image(image, base_offset, capacity)
    report.valid_entries = len(entries)
    if rec is not None:
        rec.emit("reboot", "registry-scan", found=True, valid_entries=len(entries))
    if audit:
        audit_checksums(image, entries, report)
        if rec is not None:
            rec.emit(
                "reboot", "audit",
                mismatched_slots=list(report.checksum_mismatches),
                changing=report.changing_entries,
            )

    for entry in entries:
        if not entry.is_metadata or entry.disk_block is None or not entry.dirty:
            continue
        disk = block_devices.get(entry.dev)
        if disk is None:
            continue
        data = image[entry.phys_addr : entry.phys_addr + BLOCK_SIZE]
        disk.write(entry.disk_block * SECTORS_PER_BLOCK, data, sync=True)
        report.metadata_restored += 1
    if rec is not None:
        rec.emit("reboot", "metadata-restore", restored=report.metadata_restored)
    return image, entries, report


def restore_ubc(fs, image: bytes, entries: list[RegistryEntry], report: WarmRebootReport) -> None:
    """Step 2: the user-level restore of dirty UBC pages.

    ``fs`` must provide ``inode_exists(ino)``, ``inode_size(ino)`` and
    ``write_by_ino(ino, offset, data)`` — the by-inode equivalents of the
    open/write syscalls the paper's restore process uses.
    """
    for entry in entries:
        if entry.is_metadata:
            continue
        report.ubc_entries += 1
        if not entry.dirty:
            continue  # the disk copy is current
        if not fs.inode_exists(entry.ino):
            # The file died before the crash reached it (e.g. unlinked but
            # its registry entry was mid-flight) — nothing to restore into.
            report.ubc_skipped += 1
            continue
        size = fs.inode_size(entry.ino)
        if entry.file_offset >= size:
            report.ubc_skipped += 1
            continue
        length = min(entry.size, size - entry.file_offset)
        data = image[entry.phys_addr : entry.phys_addr + length]
        fs.write_by_ino(entry.ino, entry.file_offset, data)
        report.ubc_restored += 1
    rec = getattr(getattr(fs, "kernel", None), "recorder", None)
    if rec is not None and rec.enabled:
        rec.emit(
            "reboot", "ubc-restore",
            entries=report.ubc_entries,
            restored=report.ubc_restored,
            skipped=report.ubc_skipped,
        )
