"""The Rio registry (section 2.2).

"Instead of understanding and protecting all intermediate data structures,
we keep and protect a separate area of memory, which we call the registry,
that contains all information needed to find, identify, and restore files
in memory.  For each buffer in the file cache, the registry contains the
physical memory address, file id (device number and inode number), file
offset, and size."

Ours adds three fields the rest of the paper implies: flags (valid /
dirty / changing / metadata), the disk block for metadata buffers (used by
warm reboot to restore metadata "using the disk address stored in the
registry"), and the detection checksum of section 3.2.  48 bytes per 8 KB
page — the same order as the paper's 40.

The registry lives in a fixed run of frames at the top of physical memory,
headed by a magic number, so a rebooting kernel can find it by address
with no intermediate data structures.  During normal operation the kernel
reads and writes it through the bus (so protection applies); after a crash
the recovery path reads it straight out of the raw memory image.
"""

from __future__ import annotations

import struct
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, ContextManager, Optional

from repro.errors import ConfigurationError, NoSpace
from repro.hw.bus import AccessContext, MemoryBus
from repro.hw.mmu import KSEG_BASE

REGISTRY_MAGIC = 0x52494F5245470001  # "RIOREG" v1
HEADER_SIZE = 64
ENTRY_SIZE = 48
NO_DISK_BLOCK = (1 << 64) - 1

FLAG_VALID = 1
FLAG_DIRTY = 2
FLAG_CHANGING = 4
FLAG_META = 8

_HEADER_FMT = struct.Struct("<QIIQ")  # magic, capacity, entry_size, base_paddr
_ENTRY_FMT = struct.Struct("<QIIQIIQII")
# phys_addr, dev, ino, file_offset, size, flags, disk_block, checksum, pad

_REG_CTX = AccessContext(procedure="registry_update")


@dataclass
class RegistryEntry:
    """A decoded registry entry."""

    slot: int
    phys_addr: int = 0
    dev: int = 0
    ino: int = 0
    file_offset: int = 0
    size: int = 0
    flags: int = 0
    disk_block: Optional[int] = None
    checksum: int = 0

    @property
    def valid(self) -> bool:
        return bool(self.flags & FLAG_VALID)

    @property
    def dirty(self) -> bool:
        return bool(self.flags & FLAG_DIRTY)

    @property
    def changing(self) -> bool:
        return bool(self.flags & FLAG_CHANGING)

    @property
    def is_metadata(self) -> bool:
        return bool(self.flags & FLAG_META)

    def to_bytes(self) -> bytes:
        disk_block = NO_DISK_BLOCK if self.disk_block is None else self.disk_block
        return _ENTRY_FMT.pack(
            self.phys_addr,
            self.dev,
            self.ino,
            self.file_offset,
            self.size,
            self.flags,
            disk_block,
            self.checksum,
            0,
        )

    @classmethod
    def from_bytes(cls, slot: int, data: bytes) -> "RegistryEntry":
        (
            phys_addr,
            dev,
            ino,
            file_offset,
            size,
            flags,
            disk_block,
            checksum,
            _pad,
        ) = _ENTRY_FMT.unpack(data[:ENTRY_SIZE])
        return cls(
            slot=slot,
            phys_addr=phys_addr,
            dev=dev,
            ino=ino,
            file_offset=file_offset,
            size=size,
            flags=flags,
            disk_block=None if disk_block == NO_DISK_BLOCK else disk_block,
            checksum=checksum,
        )


def capacity_for(region_bytes: int) -> int:
    """How many entries fit in a registry region of this size."""
    return (region_bytes - HEADER_SIZE) // ENTRY_SIZE


class Registry:
    """The live registry, accessed through the bus via KSEG addresses."""

    def __init__(
        self,
        bus: MemoryBus,
        base_paddr: int,
        region_bytes: int,
        window: Callable[[], ContextManager] | None = None,
    ) -> None:
        self.bus = bus
        self.base_paddr = base_paddr
        self.region_bytes = region_bytes
        self.capacity = capacity_for(region_bytes)
        if self.capacity <= 0:
            raise ConfigurationError("registry region too small")
        #: Context manager factory that opens a protection window over the
        #: registry frames; installed by the protection manager.
        self.window = window or (lambda: nullcontext())
        self._free_slots: list[int] = list(range(self.capacity - 1, -1, -1))

    # -- addressing --------------------------------------------------------

    @property
    def base_vaddr(self) -> int:
        return KSEG_BASE + self.base_paddr

    def entry_vaddr(self, slot: int) -> int:
        if not 0 <= slot < self.capacity:
            raise ConfigurationError(f"registry slot {slot} out of range")
        return self.base_vaddr + HEADER_SIZE + slot * ENTRY_SIZE

    # -- initialisation --------------------------------------------------------

    def format(self) -> None:
        """Write the header and zero all entries (boot of a cold system)."""
        with self.window():
            header = _HEADER_FMT.pack(
                REGISTRY_MAGIC, self.capacity, ENTRY_SIZE, self.base_paddr
            )
            self.bus.store(self.base_vaddr, header, _REG_CTX)
            zero = b"\x00" * ENTRY_SIZE
            for slot in range(self.capacity):
                self.bus.store(self.entry_vaddr(slot), zero, _REG_CTX)
        self._free_slots = list(range(self.capacity - 1, -1, -1))

    # -- slot management ----------------------------------------------------------

    def alloc_slot(self) -> int:
        """Claim a free slot (in-kernel free list; VALID flags are the
        crash-surviving truth)."""
        if not self._free_slots:
            raise NoSpace("registry full")
        return self._free_slots.pop()

    def free_slot(self, slot: int) -> None:
        """Invalidate and recycle a slot."""
        self.write_entry(RegistryEntry(slot=slot))  # flags=0: invalid
        self._free_slots.append(slot)

    # -- entry access ---------------------------------------------------------------

    def write_entry(self, entry: RegistryEntry) -> None:
        """Serialize an entry through the protection window."""
        rec = getattr(self.bus, "recorder", None)
        if rec is not None and rec.enabled:
            rec.emit(
                "registry", "update",
                slot=entry.slot, flags=entry.flags,
                phys_addr=entry.phys_addr, checksum=entry.checksum,
            )
        with self.window():
            self.bus.store(self.entry_vaddr(entry.slot), entry.to_bytes(), _REG_CTX)

    def read_entry(self, slot: int) -> RegistryEntry:
        """Parse the entry stored in ``slot``."""
        return RegistryEntry.from_bytes(
            slot, self.bus.load(self.entry_vaddr(slot), ENTRY_SIZE, _REG_CTX)
        )

    def update_flags(self, slot: int, *, set_flags: int = 0, clear_flags: int = 0) -> None:
        """Read-modify-write of an entry's flag bits."""
        entry = self.read_entry(slot)
        entry.flags = (entry.flags | set_flags) & ~clear_flags
        self.write_entry(entry)

    def update_fields(self, slot: int, **fields) -> None:
        """Read-modify-write of named entry fields."""
        entry = self.read_entry(slot)
        for name, value in fields.items():
            if not hasattr(entry, name):
                raise ConfigurationError(f"no registry field {name!r}")
            setattr(entry, name, value)
        self.write_entry(entry)

    def valid_entries(self) -> list[RegistryEntry]:
        """All entries with the VALID flag set."""
        return [e for slot in range(self.capacity) if (e := self.read_entry(slot)).valid]


# -- post-crash access (raw memory image, no kernel required) -----------------


def find_registry_in_image(image: bytes, page_size: int) -> tuple[int, int] | None:
    """Locate the registry in a raw memory image.

    Scans page-aligned offsets from the top of memory down (the registry
    lives in reserved top frames).  Returns ``(base_offset, capacity)`` or
    None if no registry is present (e.g. a non-Rio system, or a PC that
    scrubbed memory during reset).
    """
    for offset in range(len(image) - page_size, -1, -page_size):
        if len(image) - offset < HEADER_SIZE:
            continue
        magic, capacity, entry_size, base_paddr = _HEADER_FMT.unpack(
            image[offset : offset + _HEADER_FMT.size]
        )
        if magic == REGISTRY_MAGIC and entry_size == ENTRY_SIZE and base_paddr == offset:
            return offset, capacity
    return None


def read_entries_from_image(image: bytes, base_offset: int, capacity: int) -> list[RegistryEntry]:
    """Decode all valid entries from a raw memory image."""
    entries = []
    for slot in range(capacity):
        start = base_offset + HEADER_SIZE + slot * ENTRY_SIZE
        entry = RegistryEntry.from_bytes(slot, image[start : start + ENTRY_SIZE])
        if entry.valid:
            entries.append(entry)
    return entries
