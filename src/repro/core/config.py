"""Rio configuration: the systems evaluated in the paper."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ProtectionMode(enum.Enum):
    """How (whether) the file cache is protected from wild kernel stores."""

    #: No protection at all — "Rio without protection" relies on warm
    #: reboot alone.
    NONE = "none"
    #: Page-table write protection with KSEG forced through the TLB (the
    #: ABOX control-register method; essentially free).
    VM_KSEG = "vm_kseg"
    #: Code patching: a check inserted before every kernel store, for CPUs
    #: that cannot force physical addresses through the TLB (20-50% slower).
    CODE_PATCHING = "code_patching"


@dataclass
class RioConfig:
    """Toggles mapping to the paper's design points (section 2.3)."""

    protection: ProtectionMode = ProtectionMode.VM_KSEG
    #: Keep the registry and perform warm reboots.
    warm_reboot: bool = True
    #: Turn off reliability-induced disk writes (bwrite/bawrite -> bdwrite,
    #: sync/fsync return immediately, panic does not flush).
    reliability_writes_off: bool = True
    #: Atomic metadata updates via shadow pages (section 2.3, third change).
    shadow_metadata: bool = True
    #: Maintain per-buffer detection checksums in the registry (the
    #: experimental apparatus of section 3.2; off for performance runs).
    maintain_checksums: bool = True
    #: Run the check-elision optimizer when patching kernel text (drop
    #: address checks on stores the dataflow analysis proves safe, and
    #: pick dead scratch registers instead of spilling — the [Wahbe93]
    #: optimizations).  Off = the naive patch-every-store rewrite.
    code_patch_optimize: bool = True

    @classmethod
    def without_protection(cls, **overrides) -> "RioConfig":
        """The paper's "Rio without protection" system."""
        return cls(protection=ProtectionMode.NONE, **overrides)

    @classmethod
    def with_protection(cls, **overrides) -> "RioConfig":
        """The paper's "Rio with protection" system."""
        return cls(protection=ProtectionMode.VM_KSEG, **overrides)
