"""MMU: page-table protection and the Alpha KSEG physical-address window.

Two properties of the DEC Alpha drive Rio's protection design (section 2.1)
and both are modelled here:

1. **Page-table write protection.**  Turning off the write-permission bit
   for file cache pages makes unauthorized stores trap.  File cache
   procedures briefly re-enable the bit around legitimate writes.

2. **KSEG bypass and the ABOX control bit.**  Addresses in a dedicated
   window (top bits ``10`` on the Alpha; here everything at or above
   :data:`KSEG_BASE`) map directly to physical memory *bypassing the TLB* —
   and the bulk of the file cache (the UBC) is accessed exactly this way.
   Setting a bit in the ABOX CPU control register forces KSEG accesses
   through the TLB so they too can be write-protected.  The
   :attr:`MMU.kseg_through_tlb` flag models that bit.

A third mode, *code patching*, for CPUs that cannot force KSEG through the
TLB, is implemented at the bus/interpreter level (see
:mod:`repro.core.protection`), not here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineCheck, ProtectionTrap
from repro.hw.memory import PhysicalMemory

#: Base virtual address of the KSEG window.  ``KSEG_BASE + p`` addresses
#: physical byte ``p``.  Chosen huge so random corrupted pointers almost
#: never land inside it — mirroring the paper's observation that on a
#: 64-bit machine most wild addresses are simply illegal.
KSEG_BASE = 1 << 42


@dataclass
class PageTableEntry:
    """A (simplified) PTE: frame number plus validity and writability."""

    pfn: int
    valid: bool = True
    writable: bool = True


class MMU:
    """Translates virtual addresses and enforces write protection.

    Two translation structures exist:

    * ``_page_table`` maps *mapped kernel virtual* page numbers to PTEs —
      this is where the buffer cache (metadata) lives, in wired virtual
      memory, as on Digital Unix.
    * ``_kseg_writable`` tracks per-frame write permission for the KSEG
      window.  It is consulted **only** when :attr:`kseg_through_tlb` is
      set; otherwise KSEG stores bypass protection entirely, which is
      exactly the vulnerability Rio's ABOX trick closes.
    """

    def __init__(self, memory: PhysicalMemory) -> None:
        self.memory = memory
        self.page_size = memory.page_size
        self._page_table: dict[int, PageTableEntry] = {}
        self._kseg_writable: dict[int, bool] = {}
        self._kseg_through_tlb = False
        #: Flight recorder hook (attached by :class:`repro.hw.Machine`);
        #: traps and protection toggles are emitted from here so both
        #: execution engines — whose misses all funnel through
        #: :meth:`translate` — produce identical event streams.
        self.recorder = None
        #: Translation generation: bumped by anything that can change the
        #: outcome of :meth:`translate` (``map``/``unmap``, writability
        #: toggles, the ABOX bit).  The memory bus keys its software TLB
        #: on this counter, so a stale cached translation is never used.
        self.generation = 0
        #: Counts of protection-relevant events, for the evaluation.
        self.stat_protection_traps = 0
        self.stat_pte_toggles = 0

    @property
    def kseg_through_tlb(self) -> bool:
        """The ABOX control bit: force KSEG accesses through the TLB."""
        return self._kseg_through_tlb

    @kseg_through_tlb.setter
    def kseg_through_tlb(self, value: bool) -> None:
        value = bool(value)
        if value != self._kseg_through_tlb:
            self._kseg_through_tlb = value
            self.generation += 1
            rec = self.recorder
            if rec is not None and rec.enabled:
                rec.emit("mmu", "kseg-tlb", enabled=value)

    # -- mapping management --------------------------------------------

    def map(self, vpn: int, pfn: int, writable: bool = True) -> None:
        """Install a PTE for a kernel virtual page."""
        if not 0 <= pfn < self.memory.num_pages:
            raise MachineCheck(f"mapping to nonexistent frame {pfn}")
        self._page_table[vpn] = PageTableEntry(pfn=pfn, writable=writable)
        self.generation += 1

    def unmap(self, vpn: int) -> None:
        """Drop a PTE (subsequent accesses machine-check)."""
        if self._page_table.pop(vpn, None) is not None:
            self.generation += 1

    def pte_for(self, vpn: int) -> PageTableEntry | None:
        """The PTE mapped at ``vpn``, if any."""
        return self._page_table.get(vpn)

    def set_writable(self, vpn: int, writable: bool) -> None:
        """Toggle the write-permission bit of a mapped virtual page."""
        pte = self._page_table.get(vpn)
        if pte is None or not pte.valid:
            raise MachineCheck(f"set_writable on unmapped vpn {vpn}")
        if pte.writable != writable:
            pte.writable = writable
            self.stat_pte_toggles += 1
            self.generation += 1
            rec = self.recorder
            if rec is not None and rec.enabled:
                rec.emit("mmu", "pte-protect", vpn=vpn, writable=writable)

    def set_kseg_writable(self, pfn: int, writable: bool) -> None:
        """Toggle write permission of a physical frame in the KSEG window.

        Only meaningful when :attr:`kseg_through_tlb` is on; the paper's
        method expands the page tables "to map these KSEG addresses to
        their corresponding physical address" with controllable protection.
        """
        if not 0 <= pfn < self.memory.num_pages:
            raise MachineCheck(f"kseg protection on nonexistent frame {pfn}")
        previous = self._kseg_writable.get(pfn, True)
        if previous != writable:
            self._kseg_writable[pfn] = writable
            self.stat_pte_toggles += 1
            self.generation += 1
            rec = self.recorder
            if rec is not None and rec.enabled:
                rec.emit("mmu", "kseg-protect", pfn=pfn, writable=writable)

    def kseg_writable(self, pfn: int) -> bool:
        """Current KSEG write permission of a frame (default True)."""
        return self._kseg_writable.get(pfn, True)

    def _emit_machine_check(self, vaddr: int, write: bool, why: str) -> None:
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit("trap", "machine-check", address=vaddr, write=write, why=why)

    # -- translation -----------------------------------------------------

    def is_kseg(self, vaddr: int) -> bool:
        """True for addresses inside the KSEG window."""
        return vaddr >= KSEG_BASE

    def kseg_address(self, paddr: int) -> int:
        """Return the KSEG virtual address for physical byte ``paddr``."""
        if not 0 <= paddr < self.memory.size:
            raise MachineCheck(f"no KSEG address for physical {paddr:#x}")
        return KSEG_BASE + paddr

    def translate(self, vaddr: int, *, write: bool) -> int:
        """Translate ``vaddr`` to a physical address, enforcing protection.

        Raises :class:`MachineCheck` for illegal addresses and
        :class:`ProtectionTrap` for stores to protected pages.  The caller
        (the memory bus) turns these into a system crash, matching how the
        hardware/kernel would behave.
        """
        if vaddr < 0:
            self._emit_machine_check(vaddr, write, "negative")
            raise MachineCheck(f"negative address {vaddr:#x}")
        if self.is_kseg(vaddr):
            paddr = vaddr - KSEG_BASE
            if paddr >= self.memory.size:
                self._emit_machine_check(vaddr, write, "kseg-beyond")
                raise MachineCheck(f"KSEG address {vaddr:#x} beyond physical memory")
            if write and self._kseg_through_tlb:
                pfn = paddr // self.page_size
                if not self.kseg_writable(pfn):
                    self.stat_protection_traps += 1
                    rec = self.recorder
                    if rec is not None and rec.enabled:
                        rec.emit("trap", "kseg", pfn=pfn, address=vaddr)
                    raise ProtectionTrap(
                        f"store to protected KSEG frame {pfn}", address=vaddr
                    )
            return paddr
        vpn, offset = divmod(vaddr, self.page_size)
        pte = self._page_table.get(vpn)
        if pte is None or not pte.valid:
            self._emit_machine_check(vaddr, write, "unmapped")
            raise MachineCheck(f"invalid virtual address {vaddr:#x}")
        if write and not pte.writable:
            self.stat_protection_traps += 1
            rec = self.recorder
            if rec is not None and rec.enabled:
                rec.emit("trap", "protection", vpn=vpn, address=vaddr)
            raise ProtectionTrap(f"store to protected vpn {vpn}", address=vaddr)
        return pte.pfn * self.page_size + offset

    def translate_range(self, vaddr: int, length: int, *, write: bool) -> list[tuple[int, int]]:
        """Translate a byte range, returning ``(paddr, chunk_len)`` runs.

        A range may span pages whose frames are not physically contiguous.
        """
        runs: list[tuple[int, int]] = []
        remaining = length
        cursor = vaddr
        while remaining > 0:
            paddr = self.translate(cursor, write=write)
            in_page = self.page_size - (paddr % self.page_size)
            take = min(remaining, in_page)
            runs.append((paddr, take))
            cursor += take
            remaining -= take
        return runs
