"""The machine: memory + MMU + bus + clock + disks, and the crash lifecycle.

The fault-injection campaign needs a precise model of what happens to each
component across a crash and reboot:

* **Physical memory** keeps its contents across a reset (Alpha semantics,
  section 5).  ``reset(preserve_memory=False)`` models the PC behaviour
  that made warm reboot impossible for the Harp designers.
* **The MMU** is rebuilt from scratch on reset — mappings and protection
  state are CPU state, not memory state.
* **Disks** keep their contents; a sector being written at the instant of
  the crash is torn (disk semantics live in :mod:`repro.disk`).
* **The clock** keeps running: reboot takes (virtual) time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import CrashedMachineError
from repro.hw.bus import MemoryBus
from repro.hw.clock import Clock, NS_PER_SEC
from repro.hw.memory import DEFAULT_PAGE_SIZE, PhysicalMemory
from repro.hw.mmu import MMU
from repro.obs.events import FlightRecorder


@dataclass
class MachineConfig:
    """Sizing knobs for the simulated workstation.

    The paper's machines had 128 MB with an 80 MB UBC; the defaults here
    are scaled down so campaigns run quickly, and every experiment accepts
    a config to scale back up.
    """

    memory_bytes: int = 16 * 1024 * 1024
    page_size: int = DEFAULT_PAGE_SIZE
    #: Virtual time a (re)boot consumes before the system is usable.
    boot_time_ns: int = 30 * NS_PER_SEC
    #: Engage the hot-path execution engine (soft TLB + zero-copy word
    #: accesses on the bus, predecoded kernel text + dispatch table in the
    #: interpreter).  Observable behaviour is bit-identical either way;
    #: the reference path exists for differential testing.  The default
    #: honours the ``RIO_FAST_PATH`` environment variable (``0``/``off``/
    #: ``false`` disable it) so whole suites can be flipped wholesale.
    fast_path: bool = field(default_factory=lambda: _fast_path_default())


def _fast_path_default() -> bool:
    return os.environ.get("RIO_FAST_PATH", "1").lower() not in ("0", "off", "false")


@dataclass
class CrashRecord:
    """What the campaign needs to know about one crash."""

    time_ns: int
    reason: str
    kind: str  # "machine_check" | "protection_trap" | "panic" | "watchdog" | "forced"


class Machine:
    """A simulated workstation with an explicit crash / reset lifecycle.

    ``memory`` may be an existing :class:`PhysicalMemory` — section 5 asks
    that "if the system board fails, it should be possible to move the
    memory board to a different system without losing power or data";
    passing a transplanted board models exactly that.
    """

    def __init__(
        self,
        config: MachineConfig | None = None,
        clock: Clock | None = None,
        memory: PhysicalMemory | None = None,
    ) -> None:
        self.config = config or MachineConfig()
        self.clock = clock or Clock()
        if memory is not None and (
            memory.size != self.config.memory_bytes
            or memory.page_size != self.config.page_size
        ):
            raise ValueError("transplanted memory board does not fit this machine")
        self.memory = memory or PhysicalMemory(self.config.memory_bytes, self.config.page_size)
        self.disks: dict[str, object] = {}
        self.crashed = False
        self.crash_log: list[CrashRecord] = []
        #: The flight recorder (see :mod:`repro.obs`): one per machine,
        #: disabled by default, surviving resets so a single stream spans
        #: a crash and the warm reboot that recovers from it.
        self.recorder = FlightRecorder(self.clock)
        self.mmu = MMU(self.memory)
        self.bus = MemoryBus(self.mmu, fast_path=self.config.fast_path)
        self.bus.attach_crash_check(lambda: self.crashed)
        self.mmu.recorder = self.recorder
        self.bus.recorder = self.recorder
        self.reset_count = 0

    # -- device management ------------------------------------------------

    def attach_disk(self, name: str, disk) -> None:
        """Attach a disk (see :mod:`repro.disk`) under a device name."""
        self.disks[name] = disk
        disk.attach(self.clock)

    def disk(self, name: str):
        return self.disks[name]

    # -- crash / reset lifecycle -------------------------------------------

    def crash(self, reason: str, kind: str = "panic") -> None:
        """Bring the machine down.

        After this call all bus accesses raise
        :class:`~repro.errors.CrashedMachineError`; memory contents are
        frozen exactly as they were, which is precisely the state the warm
        reboot will recover.  In-flight disk writes are torn.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_log.append(CrashRecord(self.clock.now_ns, reason, kind))
        rec = self.recorder
        if rec is not None and rec.enabled:
            # ``go_down`` emits the richer classified event (with
            # panic_code) first; this one marks the machine actually
            # stopping, after any dying-kernel sync activity.
            rec.emit("crash", "machine-down", kind=kind, reason=reason)
        for disk in self.disks.values():
            disk.crash()

    def reset(self, preserve_memory: bool = True) -> None:
        """Reset the machine so a new kernel can boot.

        ``preserve_memory=True`` is the Alpha behaviour that warm reboot
        requires; ``False`` models PCs that scrub RAM during reset.
        """
        if preserve_memory and not self.crashed and self.reset_count == 0:
            # A first boot on a fresh machine is fine; subsequent resets
            # normally follow a crash but an administrative reboot is legal.
            pass
        self.crashed = False
        self.reset_count += 1
        if not preserve_memory:
            self.memory.erase()
        # CPU state (the MMU, including the ABOX bit) does not survive reset.
        # The flight recorder does: it is observer state, not machine state,
        # and a trial's stream must span the crash and the recovery.
        self.mmu = MMU(self.memory)
        self.bus = MemoryBus(self.mmu, fast_path=self.config.fast_path)
        self.bus.attach_crash_check(lambda: self.crashed)
        self.mmu.recorder = self.recorder
        self.bus.recorder = self.recorder
        for disk in self.disks.values():
            disk.reset()
        self.clock.consume(self.config.boot_time_ns)

    def require_up(self) -> None:
        if self.crashed:
            raise CrashedMachineError("machine is down")
