"""The memory bus: every kernel load and store goes through here.

The paper's central observation about why memory is vulnerable is that "any
store instruction by any kernel procedure can easily change any data in
memory simply by using the wrong address".  The bus is where that danger
lives in the simulation: wild stores issued by fault-corrupted code travel
exactly the same path as legitimate stores, so whether they corrupt the
file cache, trap on a protected page, or machine-check on an illegal
address is decided by the same mechanism in both cases.

The bus also hosts the *code patching* hook: when a store checker is
installed (see :mod:`repro.core.protection`), every store is pre-checked
against the file cache's registered-writable ranges, modelling the
sandboxing-style instrumentation used on CPUs that cannot force physical
addresses through the TLB.

Hot path
--------

When :attr:`MemoryBus.fast_path` is on (the default, see
``MachineConfig.fast_path``), accesses that fit inside one page take a
zero-copy route: the ``(virtual page base, write)`` pair is looked up in a
software TLB that caches the physical page base of each successful MMU
translation, and the bytes are read/written directly in the frame's
backing ``bytearray``.  The soft TLB is invalidated wholesale whenever
:attr:`MMU.generation` changes — any ``map``/``unmap``, any PTE or KSEG
writability toggle, and any flip of the ABOX ``kseg_through_tlb`` bit —
so protection changes take effect on the very next access, exactly as on
the slow path.  Misses, page-crossing accesses, traced runs, and (for
stores) an installed store checker all fall back to the original
translate-everything path, which keeps trap types, messages, ordering and
every :class:`BusStats` counter identical between the two routes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import CrashedMachineError
from repro.hw.mmu import MMU

_MASK64 = (1 << 64) - 1


@dataclass
class AccessContext:
    """Identifies the kernel procedure performing an access.

    ``procedure`` is used for trap attribution in the campaign logs;
    ``is_io_path`` marks accesses made on behalf of an I/O request — such
    accesses model *indirect* corruption (section 3.2) and are still
    honoured by protection windows that the I/O procedure opened.
    """

    procedure: str = "kernel"
    is_io_path: bool = False


KERNEL_CONTEXT = AccessContext()

StoreChecker = Callable[[int, int, AccessContext], None]

#: Default bound on the access trace (entries, not bytes).  Long traced
#: runs drop their oldest records instead of growing without limit.
DEFAULT_TRACE_CAP = 100_000


class TraceRing:
    """A bounded access trace: drops its oldest entry once ``cap``
    entries are held, counting the drops in :attr:`dropped`.

    Backed by a ``collections.deque(maxlen=cap)`` so eviction is O(1)
    (the previous list-based version paid ``del self[0]`` — O(n) — per
    append once full, taxing exactly the long traced runs the cap
    exists for).  It is deliberately *not* a list subclass: every
    mutator is ring-aware (``append``, ``extend``, ``+=``), so nothing
    can silently bypass the cap or the ``dropped`` accounting, while
    the list-like reads tests rely on (``len``, iteration, indexing,
    slicing, ``in``, ``== []``) all keep working.
    """

    __slots__ = ("cap", "dropped", "_buf")

    def __init__(self, cap: int = DEFAULT_TRACE_CAP) -> None:
        if cap <= 0:
            raise ValueError("trace cap must be positive")
        self.cap = cap
        self.dropped = 0
        self._buf: deque = deque(maxlen=cap)

    # -- mutators (all ring-aware) --------------------------------------

    def append(self, item) -> None:
        if len(self._buf) == self.cap:
            self.dropped += 1
        self._buf.append(item)

    def extend(self, items) -> None:
        for item in items:
            self.append(item)

    def __iadd__(self, items) -> "TraceRing":
        self.extend(items)
        return self

    def clear(self) -> None:
        self._buf.clear()
        self.dropped = 0

    # -- list-like reads ------------------------------------------------

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self):
        return iter(self._buf)

    def __contains__(self, item) -> bool:
        return item in self._buf

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._buf)[index]
        return self._buf[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, TraceRing):
            return list(self._buf) == list(other._buf)
        if isinstance(other, (list, tuple)):
            return list(self._buf) == list(other)
        return NotImplemented

    __hash__ = None  # mutable

    def __repr__(self) -> str:
        return f"TraceRing({list(self._buf)!r}, cap={self.cap}, dropped={self.dropped})"


@dataclass
class BusStats:
    loads: int = 0
    stores: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    checked_stores: int = 0
    trace: TraceRing = field(default_factory=TraceRing)


class MemoryBus:
    """Mediates all kernel memory accesses through the MMU."""

    def __init__(self, mmu: MMU, fast_path: bool = True) -> None:
        self.mmu = mmu
        self.memory = mmu.memory
        self.stats = BusStats()
        #: Flight recorder hook (attached by :class:`repro.hw.Machine`);
        #: components that only hold a bus (e.g. the registry) reach the
        #: recorder through here.  ``None`` for standalone buses.
        self.recorder = None
        self.store_checker: Optional[StoreChecker] = None
        self._crashed_check: Callable[[], bool] = lambda: False
        self._tracing = False
        #: Engage the soft TLB + zero-copy word paths (and, transitively,
        #: the interpreter's predecode engine).  Off = reference path.
        self.fast_path = fast_path
        self._page_size = mmu.memory.page_size
        self._pages = mmu.memory._pages
        #: Soft TLB: (virtual page base, write) -> (physical page base, pfn).
        self._tlb: dict[tuple[int, bool], tuple[int, int]] = {}
        self._tlb_gen = -1

    def attach_crash_check(self, check: Callable[[], bool]) -> None:
        """Install the machine's "am I crashed" predicate."""
        self._crashed_check = check

    def enable_tracing(self, enabled: bool = True, cap: int | None = None) -> None:
        """Record (kind, vaddr, length, procedure) tuples — for tests.

        ``cap`` (entries) re-bounds the trace ring; the default keeps the
        most recent :data:`DEFAULT_TRACE_CAP` accesses and counts drops in
        ``stats.trace.dropped``.  Tracing forces every access — including
        interpreter instruction fetches — down the slow path so the
        recorded sequence is the reference sequence.
        """
        self._tracing = enabled
        if cap is not None:
            self.stats.trace = TraceRing(cap)
        if not enabled:
            self.stats.trace.clear()

    def _guard(self) -> None:
        if self._crashed_check():
            raise CrashedMachineError("memory access on crashed machine")

    # -- the soft TLB ---------------------------------------------------

    def _fast_page(self, vaddr: int, off: int, write: bool) -> tuple[int, int]:
        """Translate the page holding ``vaddr`` via the soft TLB.

        Returns ``(physical page base, pfn)``; misses consult
        :meth:`MMU.translate` (so every MachineCheck / ProtectionTrap and
        every ``stat_protection_traps`` bump is the slow path's own) and
        only successful translations are cached.
        """
        mmu = self.mmu
        gen = mmu.generation
        if gen != self._tlb_gen:
            self._tlb.clear()
            self._tlb_gen = gen
        key = (vaddr - off, write)
        hit = self._tlb.get(key)
        if hit is None:
            paddr = mmu.translate(vaddr, write=write)
            pbase = paddr - off
            hit = (pbase, pbase // self._page_size)
            self._tlb[key] = hit
        return hit

    # -- loads ----------------------------------------------------------

    def load(self, vaddr: int, length: int, ctx: AccessContext = KERNEL_CONTEXT) -> bytes:
        """Kernel load through the MMU (may machine-check)."""
        self._guard()
        stats = self.stats
        stats.loads += 1
        stats.bytes_loaded += length
        if self._tracing:
            stats.trace.append(("load", vaddr, length, ctx.procedure))
        elif self.fast_path and length:
            off = vaddr % self._page_size
            if off + length <= self._page_size:
                _, pfn = self._fast_page(vaddr, off, False)
                page = self._pages.get(pfn)
                if page is None:
                    page = self.memory.page(pfn)
                return bytes(page[off : off + length])
        out = bytearray()
        for paddr, take in self.mmu.translate_range(vaddr, length, write=False):
            out += self.memory.read(paddr, take)
        return bytes(out)

    def load_u64(self, vaddr: int, ctx: AccessContext = KERNEL_CONTEXT) -> int:
        ps = self._page_size
        off = vaddr % ps
        if self.fast_path and not self._tracing and off <= ps - 8:
            self._guard()
            stats = self.stats
            stats.loads += 1
            stats.bytes_loaded += 8
            _, pfn = self._fast_page(vaddr, off, False)
            page = self._pages.get(pfn)
            if page is None:
                page = self.memory.page(pfn)
            return int.from_bytes(page[off : off + 8], "little")
        return int.from_bytes(self.load(vaddr, 8, ctx), "little")

    def load_u8(self, vaddr: int, ctx: AccessContext = KERNEL_CONTEXT) -> int:
        if self.fast_path and not self._tracing:
            self._guard()
            stats = self.stats
            stats.loads += 1
            stats.bytes_loaded += 1
            off = vaddr % self._page_size
            _, pfn = self._fast_page(vaddr, off, False)
            page = self._pages.get(pfn)
            if page is None:
                page = self.memory.page(pfn)
            return page[off]
        return self.load(vaddr, 1, ctx)[0]

    # -- stores ---------------------------------------------------------

    def store(
        self,
        vaddr: int,
        data: bytes | bytearray | memoryview,
        ctx: AccessContext = KERNEL_CONTEXT,
    ) -> None:
        """Kernel store through the MMU and (when installed) the
        code-patching store checker; may trap or machine-check."""
        self._guard()
        if not isinstance(data, (bytes, bytearray, memoryview)):
            data = bytes(data)
        n = len(data)
        stats = self.stats
        if self.store_checker is not None:
            stats.checked_stores += 1
            self.store_checker(vaddr, n, ctx)
        stats.stores += 1
        stats.bytes_stored += n
        if self._tracing:
            stats.trace.append(("store", vaddr, n, ctx.procedure))
        elif self.fast_path and n and self.store_checker is None:
            off = vaddr % self._page_size
            if off + n <= self._page_size:
                _, pfn = self._fast_page(vaddr, off, True)
                page = self._pages.get(pfn)
                if page is None:
                    page = self.memory.page(pfn)
                self.memory._page_gens[pfn] += 1
                page[off : off + n] = data
                return
        runs = self.mmu.translate_range(vaddr, n, write=True)
        if len(runs) == 1:
            self.memory.write(runs[0][0], data)
        else:
            view = data if isinstance(data, memoryview) else memoryview(data)
            pos = 0
            for paddr, take in runs:
                self.memory.write(paddr, view[pos : pos + take])
                pos += take

    def store_u64(self, vaddr: int, value: int, ctx: AccessContext = KERNEL_CONTEXT) -> None:
        ps = self._page_size
        off = vaddr % ps
        if (
            self.fast_path
            and not self._tracing
            and self.store_checker is None
            and off <= ps - 8
        ):
            self._guard()
            stats = self.stats
            stats.stores += 1
            stats.bytes_stored += 8
            _, pfn = self._fast_page(vaddr, off, True)
            page = self._pages.get(pfn)
            if page is None:
                page = self.memory.page(pfn)
            self.memory._page_gens[pfn] += 1
            page[off : off + 8] = (value & _MASK64).to_bytes(8, "little")
            return
        self.store(vaddr, (value & _MASK64).to_bytes(8, "little"), ctx)

    def store_u8(self, vaddr: int, value: int, ctx: AccessContext = KERNEL_CONTEXT) -> None:
        if self.fast_path and not self._tracing and self.store_checker is None:
            self._guard()
            stats = self.stats
            stats.stores += 1
            stats.bytes_stored += 1
            off = vaddr % self._page_size
            _, pfn = self._fast_page(vaddr, off, True)
            page = self._pages.get(pfn)
            if page is None:
                page = self.memory.page(pfn)
            self.memory._page_gens[pfn] += 1
            page[off] = value & 0xFF
            return
        self.store(vaddr, bytes([value & 0xFF]), ctx)
