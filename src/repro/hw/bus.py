"""The memory bus: every kernel load and store goes through here.

The paper's central observation about why memory is vulnerable is that "any
store instruction by any kernel procedure can easily change any data in
memory simply by using the wrong address".  The bus is where that danger
lives in the simulation: wild stores issued by fault-corrupted code travel
exactly the same path as legitimate stores, so whether they corrupt the
file cache, trap on a protected page, or machine-check on an illegal
address is decided by the same mechanism in both cases.

The bus also hosts the *code patching* hook: when a store checker is
installed (see :mod:`repro.core.protection`), every store is pre-checked
against the file cache's registered-writable ranges, modelling the
sandboxing-style instrumentation used on CPUs that cannot force physical
addresses through the TLB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import CrashedMachineError
from repro.hw.mmu import MMU


@dataclass
class AccessContext:
    """Identifies the kernel procedure performing an access.

    ``procedure`` is used for trap attribution in the campaign logs;
    ``is_io_path`` marks accesses made on behalf of an I/O request — such
    accesses model *indirect* corruption (section 3.2) and are still
    honoured by protection windows that the I/O procedure opened.
    """

    procedure: str = "kernel"
    is_io_path: bool = False


KERNEL_CONTEXT = AccessContext()

StoreChecker = Callable[[int, int, AccessContext], None]


@dataclass
class BusStats:
    loads: int = 0
    stores: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    checked_stores: int = 0
    trace: list = field(default_factory=list)


class MemoryBus:
    """Mediates all kernel memory accesses through the MMU."""

    def __init__(self, mmu: MMU) -> None:
        self.mmu = mmu
        self.memory = mmu.memory
        self.stats = BusStats()
        self.store_checker: Optional[StoreChecker] = None
        self._crashed_check: Callable[[], bool] = lambda: False
        self._tracing = False

    def attach_crash_check(self, check: Callable[[], bool]) -> None:
        """Install the machine's "am I crashed" predicate."""
        self._crashed_check = check

    def enable_tracing(self, enabled: bool = True) -> None:
        """Record (kind, vaddr, length, procedure) tuples — for tests."""
        self._tracing = enabled
        if not enabled:
            self.stats.trace.clear()

    def _guard(self) -> None:
        if self._crashed_check():
            raise CrashedMachineError("memory access on crashed machine")

    # -- loads ----------------------------------------------------------

    def load(self, vaddr: int, length: int, ctx: AccessContext = KERNEL_CONTEXT) -> bytes:
        """Kernel load through the MMU (may machine-check)."""
        self._guard()
        self.stats.loads += 1
        self.stats.bytes_loaded += length
        if self._tracing:
            self.stats.trace.append(("load", vaddr, length, ctx.procedure))
        out = bytearray()
        for paddr, take in self.mmu.translate_range(vaddr, length, write=False):
            out += self.memory.read(paddr, take)
        return bytes(out)

    def load_u64(self, vaddr: int, ctx: AccessContext = KERNEL_CONTEXT) -> int:
        return int.from_bytes(self.load(vaddr, 8, ctx), "little")

    def load_u8(self, vaddr: int, ctx: AccessContext = KERNEL_CONTEXT) -> int:
        return self.load(vaddr, 1, ctx)[0]

    # -- stores ---------------------------------------------------------

    def store(
        self,
        vaddr: int,
        data: bytes | bytearray | memoryview,
        ctx: AccessContext = KERNEL_CONTEXT,
    ) -> None:
        """Kernel store through the MMU and (when installed) the
        code-patching store checker; may trap or machine-check."""
        self._guard()
        data = bytes(data)
        if self.store_checker is not None:
            self.stats.checked_stores += 1
            self.store_checker(vaddr, len(data), ctx)
        self.stats.stores += 1
        self.stats.bytes_stored += len(data)
        if self._tracing:
            self.stats.trace.append(("store", vaddr, len(data), ctx.procedure))
        pos = 0
        for paddr, take in self.mmu.translate_range(vaddr, len(data), write=True):
            self.memory.write(paddr, data[pos : pos + take])
            pos += take

    def store_u64(self, vaddr: int, value: int, ctx: AccessContext = KERNEL_CONTEXT) -> None:
        self.store(vaddr, (value & (1 << 64) - 1).to_bytes(8, "little"), ctx)

    def store_u8(self, vaddr: int, value: int, ctx: AccessContext = KERNEL_CONTEXT) -> None:
        self.store(vaddr, bytes([value & 0xFF]), ctx)
