"""Virtual time.

All performance numbers in the reproduction (Table 2 and the micro-benches)
are *virtual seconds* accumulated on this clock: CPU work consumes time via
:meth:`Clock.consume`, synchronous disk I/O advances the clock to the
request's completion time, and asynchronous I/O merely occupies the disk's
internal timeline.  Using a virtual clock makes every run deterministic and
lets a laptop replay "6 machine-months" of crash testing.
"""

from __future__ import annotations

from typing import Callable

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


class Clock:
    """A monotonically advancing virtual clock with nanosecond resolution."""

    def __init__(self, start_ns: int = 0) -> None:
        self._now_ns = start_ns
        self._listeners: list[Callable[[int], None]] = []

    @property
    def now_ns(self) -> int:
        return self._now_ns

    @property
    def now_seconds(self) -> float:
        return self._now_ns / NS_PER_SEC

    def consume(self, ns: int) -> None:
        """Advance the clock by ``ns`` nanoseconds of CPU work."""
        if ns < 0:
            raise ValueError("cannot consume negative time")
        self._now_ns += ns
        self._fire()

    def advance_to(self, t_ns: int) -> None:
        """Advance the clock to absolute time ``t_ns`` (no-op if in the past)."""
        if t_ns > self._now_ns:
            self._now_ns = t_ns
            self._fire()

    def on_advance(self, callback: Callable[[int], None]) -> None:
        """Register ``callback(now_ns)`` invoked after every advance.

        Used by polled daemons (e.g. the 30-second ``update`` flush daemon)
        to notice that their deadline has passed.
        """
        self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[int], None]) -> None:
        if callback in self._listeners:
            self._listeners.remove(callback)

    def _fire(self) -> None:
        for callback in list(self._listeners):
            callback(self._now_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock({self.now_seconds:.6f}s)"
