"""Physical memory: real bytes, organised in pages, surviving resets.

The reliability experiments in the paper are only meaningful because the
file cache is made of actual mutable state that faults can genuinely
corrupt and that the warm reboot genuinely recovers.  This module therefore
stores real bytes (lazily-allocated ``bytearray`` pages) rather than any
symbolic abstraction; checksums, crash dumps and the registry all operate
on these bytes.
"""

from __future__ import annotations

from repro.errors import MachineCheck
from repro.util.checksum import fletcher32

DEFAULT_PAGE_SIZE = 8192  # the paper's 8 KB file-cache page


class PhysicalMemory:
    """Byte-addressable physical memory of ``size`` bytes.

    Pages are allocated on first touch and initialised to zero.  The object
    deliberately has no notion of protection — that is the MMU's job; code
    with a raw reference to :class:`PhysicalMemory` models hardware-level
    access (e.g. the crash-dump path and corruption detectors).
    """

    def __init__(self, size: int, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if size <= 0 or page_size <= 0 or size % page_size:
            raise ValueError("memory size must be a positive multiple of page size")
        self.size = size
        self.page_size = page_size
        self.num_pages = size // page_size
        self._pages: dict[int, bytearray] = {}
        #: Per-frame write-generation counters.  Every mutation of a frame
        #: (``write``, ``fill``, ``flip_bit``, ``erase``, ``load_image``)
        #: bumps its counter; the interpreter's predecode cache and other
        #: derived views key their validity on these.  The list identity is
        #: stable for the lifetime of the object (hot loops hold a direct
        #: reference), so it is mutated in place, never rebound.
        self._page_gens: list[int] = [0] * self.num_pages

    # -- page helpers -------------------------------------------------

    def page(self, pfn: int) -> bytearray:
        """Return the backing store for physical frame ``pfn``."""
        if not 0 <= pfn < self.num_pages:
            raise MachineCheck(f"physical frame {pfn} out of range")
        store = self._pages.get(pfn)
        if store is None:
            store = bytearray(self.page_size)
            self._pages[pfn] = store
        return store

    def page_checksum(self, pfn: int) -> int:
        return fletcher32(self.page(pfn))

    def generation(self, pfn: int) -> int:
        """Write-generation of frame ``pfn`` (bumped on every mutation)."""
        if not 0 <= pfn < self.num_pages:
            raise MachineCheck(f"physical frame {pfn} out of range")
        return self._page_gens[pfn]

    # -- byte-granular access ------------------------------------------

    def _check_range(self, addr: int, length: int) -> None:
        if length < 0:
            raise ValueError("negative length")
        if addr < 0 or addr + length > self.size:
            raise MachineCheck(
                f"physical access [{addr:#x}, {addr + length:#x}) outside memory"
            )

    def read(self, addr: int, length: int) -> bytes:
        """Hardware-level read of physical bytes (no MMU involved)."""
        self._check_range(addr, length)
        pfn, off = divmod(addr, self.page_size)
        if off + length <= self.page_size:  # common case: one frame
            return bytes(self.page(pfn)[off : off + length])
        out = bytearray()
        while length > 0:
            pfn, off = divmod(addr, self.page_size)
            take = min(length, self.page_size - off)
            out += self.page(pfn)[off : off + take]
            addr += take
            length -= take
        return bytes(out)

    def write(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        """Hardware-level write of physical bytes (no MMU involved).

        ``bytes``/``bytearray``/``memoryview`` inputs are written without
        an intermediate ``bytes(data)`` materialisation.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            data = bytes(data)
        n = len(data)
        self._check_range(addr, n)
        gens = self._page_gens
        pos = 0
        while pos < n:
            pfn, off = divmod(addr + pos, self.page_size)
            take = min(n - pos, self.page_size - off)
            self.page(pfn)[off : off + take] = (
                data if pos == 0 and take == n else data[pos : pos + take]
            )
            gens[pfn] += 1
            pos += take

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, (value & (1 << 64) - 1).to_bytes(8, "little"))

    def read_u32(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 4), "little")

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def fill(self, addr: int, length: int, value: int = 0) -> None:
        self._check_range(addr, length)
        self.write(addr, bytes([value & 0xFF]) * length)

    # -- whole-image operations ----------------------------------------

    def dump_image(self) -> bytes:
        """Return the full memory image (used for the crash dump to swap)."""
        return self.read(0, self.size)

    def load_image(self, image: bytes) -> None:
        if len(image) != self.size:
            raise ValueError("image size mismatch")
        self.write(0, image)

    def erase(self) -> None:
        """Zero all of memory — models a PC-style reset that loses contents.

        Section 5 notes that the PCs the authors tested erase memory on
        reboot, which makes warm reboot impossible; this method lets the
        test suite demonstrate that failure mode.
        """
        self._pages.clear()
        gens = self._page_gens
        for pfn in range(len(gens)):  # in place: hot loops alias the list
            gens[pfn] += 1

    def flip_bit(self, addr: int, bit: int) -> None:
        """Flip one bit — the lowest-level corruption primitive."""
        self._check_range(addr, 1)
        if not 0 <= bit < 8:
            raise ValueError("bit index out of range")
        pfn, off = divmod(addr, self.page_size)
        self.page(pfn)[off] ^= 1 << bit
        self._page_gens[pfn] += 1
