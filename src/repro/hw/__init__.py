"""Simulated hardware: clock, physical memory, MMU (with KSEG), bus, machine.

This package substitutes for the DEC 3000/600 workstations used in the
paper.  The pieces that matter for Rio are modelled bit-for-bit:

* :class:`~repro.hw.memory.PhysicalMemory` holds real bytes and survives a
  machine reset (DEC Alphas "allow a reset and boot without erasing memory",
  section 5 — a property the warm reboot depends on and which most PCs of
  the era lacked).
* :class:`~repro.hw.mmu.MMU` implements page-table write protection plus the
  Alpha's KSEG window: physical addresses that normally bypass the TLB, and
  the ABOX control-register bit that forces even KSEG accesses through the
  TLB (section 2.1) so file cache pages can be write-protected.
* :class:`~repro.hw.machine.Machine` ties them together and implements the
  crash / reset lifecycle used by the fault-injection campaign.
"""

from repro.hw.clock import Clock
from repro.hw.memory import PhysicalMemory
from repro.hw.mmu import MMU, KSEG_BASE, PageTableEntry
from repro.hw.bus import AccessContext, MemoryBus
from repro.hw.machine import Machine, MachineConfig

__all__ = [
    "Clock",
    "PhysicalMemory",
    "MMU",
    "KSEG_BASE",
    "PageTableEntry",
    "AccessContext",
    "MemoryBus",
    "Machine",
    "MachineConfig",
]
