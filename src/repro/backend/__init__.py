"""Pluggable tiered backing stores behind the simulated disk.

The Rio paper has exactly one persistence tier — the local SCSI disk.
This package adds the s3ql axis: an abstract object-store protocol
(:mod:`repro.backend.common`), a free local implementation
(:mod:`repro.backend.local`), a deterministic remote model with
latency/bandwidth/outage weather (:mod:`repro.backend.objectstore`),
and the tiered write-back cache that glues one of them behind the disk
(:mod:`repro.backend.tiered`).  Reconciliation and verification live in
:mod:`repro.backend.fsck_remote` (s3ql-style ``--batch``/``--force``
fsck) and :mod:`repro.backend.audit` (mount the materialized remote
image on a scratch machine and replay the promise ledger).

Everything is a pure function of its seed: backends charge the
simulated machine clock, draw failures from
:class:`~repro.util.prng.DeterministicRandom`, and obey an installed
:class:`~repro.faults.capabilities.ChaosRegistry` — so campaign digests
stay bit-identical across ``--jobs`` and execution engines.
"""

from __future__ import annotations

from typing import Optional

from repro.backend.audit import (
    RemoteCheck,
    mount_materialized,
    remote_recovery_audit,
)
from repro.backend.common import (
    Backend,
    BackendError,
    BackendOutage,
    BackendStats,
    DictBackend,
    TransientBackendError,
)
from repro.backend.fsck_remote import RemoteFsckReport, fsck_remote
from repro.backend.local import LocalBackend
from repro.backend.objectstore import ObjectStoreBackend, ObjectStoreConfig
from repro.backend.tiered import TieredConfig, TieredStats, TieredStore

#: The names ``--backend`` accepts (None / omitted means no remote tier).
BACKEND_NAMES = ("local", "objectstore", "tiered")


def make_backing_store(
    name: str,
    *,
    disk,
    clock=None,
    seed: int = 0,
    config: Optional[TieredConfig] = None,
) -> TieredStore:
    """Build the named backing-store flavor over ``disk``.

    * ``local`` — write-through (threshold 1) over the free in-process
      backend: every remote code path runs, nothing costs or fails.
    * ``objectstore`` — write-through over the seeded remote model:
      every flush pays the remote round-trip immediately.
    * ``tiered`` — write-back over the remote model: uploads batch at
      the dirty threshold with read-ahead on the way back (the s3ql
      ``block_cache`` shape).
    """
    if name == "local":
        remote = LocalBackend(clock=clock)
        cfg = config or TieredConfig(dirty_threshold=1, readahead=0)
    elif name == "objectstore":
        remote = ObjectStoreBackend(ObjectStoreConfig(seed=seed), clock=clock)
        cfg = config or TieredConfig(dirty_threshold=1)
    elif name == "tiered":
        remote = ObjectStoreBackend(ObjectStoreConfig(seed=seed), clock=clock)
        cfg = config or TieredConfig()
    else:
        raise ValueError(f"unknown backend {name!r}; know {BACKEND_NAMES}")
    return TieredStore(disk, remote, clock=clock, config=cfg)


__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "BackendError",
    "BackendOutage",
    "BackendStats",
    "DictBackend",
    "LocalBackend",
    "ObjectStoreBackend",
    "ObjectStoreConfig",
    "RemoteCheck",
    "RemoteFsckReport",
    "TieredConfig",
    "TieredStats",
    "TieredStore",
    "TransientBackendError",
    "fsck_remote",
    "make_backing_store",
    "mount_materialized",
    "remote_recovery_audit",
]
