"""The tiered store: local disk as a write-back cache for an object store.

s3ql's ``block_cache`` translated into this repo's vocabulary.  The
local simulated disk stays the first persistence tier and the
authority; behind it sits a :class:`~repro.backend.common.Backend`
holding one immutable blob per distinct block *content*:

* ``obj/<sha256>`` — the 8 KiB block payload, stored once per distinct
  content (dedup-by-content-hash);
* ``map/<block>`` — which content hash block number ``<block>``
  currently holds (the commit point of an upload);
* ``ref/<sha256>`` — how many map entries reference the blob (refcount;
  a blob is deleted when its count reaches zero);
* ``seal`` — a digest pair binding the local image to the remote map,
  written only when the store is fully drained and reconciled.  A valid
  seal is ``repro fsck-remote``'s fast path; any later upload or local
  write invalidates it by construction (the digests stop matching).

**The dirty queue.**  Every writeback flush of a local block calls
:meth:`note_flush`, which appends the block to an ordered dirty set.
When the set reaches ``dirty_threshold`` — or a durability point
(sync/fsync/close under a write-through policy) drains explicitly —
:meth:`drain_uploads` uploads the dirty blocks to the remote tier.

**The snapshot-once invariant.**  A drain snapshots the dirty set
*once* and uploads exactly that batch.  Blocks re-dirtied while a slow
(possibly remote) drain is in flight are *not* appended to the running
batch — they wait for the next drain — so a writer racing a drain can
never extend it unboundedly.  The re-entrancy guard makes nested
threshold triggers (a flush issued *by* the drain's own machinery)
no-ops.

**Crash semantics.**  The dirty queue, the map/refcount mirrors, and
the read-ahead buffer are ordinary kernel memory: a machine crash
(:meth:`on_machine_crash`) discards them all.  Recovery rebuilds the
mirrors from a remote listing and re-reconciles remote against the
local disk (:func:`repro.backend.fsck_remote.fsck_remote`) — the local
tier is always the recovery authority, so a crash between the
``backend/upload`` and ``backend/commit`` boundaries at worst strands
an orphan blob for fsck-remote to sweep.

Each upload emits two flight-recorder boundary events *before* the
remote state they announce changes — ``backend/upload`` before the
blob put, ``backend/commit`` before the map flip — so ``repro
explore`` enumerates and crashes inside every upload transaction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.backend.common import Backend, BackendOutage, TransientBackendError
from repro.fs.types import BLOCK_SIZE, SECTORS_PER_BLOCK

#: Key namespaces of the remote schema (see module docstring).
OBJ_PREFIX = "obj/"
MAP_PREFIX = "map/"
REF_PREFIX = "ref/"
SEAL_KEY = "seal"


def obj_key(content_hash: str) -> str:
    """Remote key of the blob holding content ``content_hash``."""
    return OBJ_PREFIX + content_hash


def map_key(block: int) -> str:
    """Remote key of block ``block``'s map entry."""
    return f"{MAP_PREFIX}{block:08d}"


def ref_key(content_hash: str) -> str:
    """Remote key of the refcount for content ``content_hash``."""
    return REF_PREFIX + content_hash


def block_of_map_key(key: str) -> int:
    """Inverse of :func:`map_key`."""
    return int(key[len(MAP_PREFIX):])


def content_hash(data: bytes) -> str:
    """The dedup identity of one block payload."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class TieredConfig:
    """Write-back and retry policy of one tiered store."""

    #: Dirty blocks accumulated before a drain triggers automatically.
    #: 1 makes the store write-through (every flush uploads immediately).
    dirty_threshold: int = 8
    #: Blocks prefetched after each remote read (0 disables read-ahead).
    readahead: int = 2
    #: Retries per upload on :class:`TransientBackendError` before the
    #: block is deferred to the next drain.
    max_retries: int = 3
    #: Virtual-time backoff charged per retry (doubles per attempt).
    retry_backoff_ns: int = 1_000_000


@dataclass
class TieredStats:
    """What the tiered store did (observability and benchmarks)."""

    uploads: int = 0
    bytes_uploaded: int = 0
    #: Uploads whose blob already existed remotely (content dedup).
    dedup_hits: int = 0
    #: Uploads skipped because the mapped content was already current.
    unchanged_skips: int = 0
    retries: int = 0
    #: Uploads deferred to a later drain because the store was down.
    outage_deferrals: int = 0
    drains: int = 0
    remote_reads: int = 0
    readahead_fills: int = 0
    readahead_hits: int = 0

    def to_json_dict(self) -> Dict[str, int]:
        """JSON-safe counter summary for reports and digests."""
        return dict(self.__dict__)


class TieredStore:
    """Local disk in front, deduplicating object store behind.

    The store is passive until wired: :meth:`note_flush` is called from
    the writeback flush boundary (see :mod:`repro.fs.cache`), drains
    are triggered by thresholds and the policy-level durability hooks
    (see :mod:`repro.fs.writeback`), and recovery reconciliation runs
    from :meth:`repro.system.System.reboot`.
    """

    def __init__(
        self,
        disk,
        remote: Backend,
        *,
        clock=None,
        config: Optional[TieredConfig] = None,
    ) -> None:
        self.disk = disk
        self.remote = remote
        self.clock = clock
        self.config = config or TieredConfig()
        #: Flight recorder for upload/commit boundary events; installed
        #: once by the owning system (the recorder survives machine
        #: resets, so this never needs re-pointing).
        self.recorder = None
        self.stats = TieredStats()
        # Ordered dirty set (dict for insertion order + O(1) membership).
        self._dirty: Dict[int, None] = {}
        self._draining = False
        # In-memory mirrors of the remote map/refcount schema.  These
        # live in kernel memory: a machine crash invalidates them and
        # recovery rebuilds them from a remote listing.
        self._map: Dict[int, str] = {}
        self._refs: Dict[str, int] = {}
        # A fresh store starts empty on both sides: mirror is valid.
        self._mirror_valid = True
        # Single-use read-ahead buffer: block -> payload.
        self._readahead: Dict[int, bytes] = {}

    # -- wiring ---------------------------------------------------------

    def attach(self, clock) -> None:
        """Point the store (and its backend) at the machine clock."""
        self.clock = clock
        attach = getattr(self.remote, "attach", None)
        if attach is not None:
            attach(clock)

    def on_machine_crash(self) -> None:
        """The machine died: every in-memory structure here dies with it.

        The dirty queue, the map/refcount mirrors, and the read-ahead
        buffer are ordinary kernel heap — none of it survives a crash.
        The remote tier keeps whatever uploads committed; reconciling
        it against the surviving local disk is recovery's job
        (:func:`repro.backend.fsck_remote.fsck_remote`).
        """
        self._dirty.clear()
        self._readahead.clear()
        self._map.clear()
        self._refs.clear()
        self._mirror_valid = False
        self._draining = False

    def _ensure_mirror(self) -> None:
        """Rebuild the map/refcount mirrors from a remote listing."""
        if self._mirror_valid:
            return
        remote = self.remote
        new_map: Dict[int, str] = {}
        new_refs: Dict[str, int] = {}
        for key in remote.list(MAP_PREFIX):
            new_map[block_of_map_key(key)] = remote.get(key).decode("ascii")
        for key in remote.list(REF_PREFIX):
            new_refs[key[len(REF_PREFIX):]] = int(remote.get(key).decode("ascii"))
        self._map = new_map
        self._refs = new_refs
        self._mirror_valid = True

    # -- the write path -------------------------------------------------

    def note_flush(self, block: int) -> None:
        """A local flush of ``block`` just hit the disk queue.

        Appends the block to the ordered dirty set (re-flushing moves
        it to the tail: last write wins, upload order follows flush
        order) and triggers a drain at the threshold.
        """
        self._readahead.pop(block, None)
        self._dirty.pop(block, None)
        self._dirty[block] = None
        if (
            not self._draining
            and len(self._dirty) >= self.config.dirty_threshold
        ):
            self.drain_uploads()

    def drain_uploads(self) -> bool:
        """Upload every *currently* dirty block, in flush order.

        The dirty set is snapshotted **once**; blocks re-dirtied while
        the drain is in flight wait for the next drain (see the module
        docstring for why).  Returns True when the batch fully
        committed; False when an outage deferred part of it (the
        deferred blocks stay dirty).

        A drain never writes the seal: an empty queue only means this
        store uploaded everything *it* was told about, not that the
        remote mirrors the whole local image (blocks written before the
        store was installed — mkfs — never pass through
        :meth:`note_flush`).  Only ``fsck_remote``'s full clean scan
        may make that claim.
        """
        if self._draining:
            return False
        self._draining = True
        self.stats.drains += 1
        try:
            batch = list(self._dirty)  # the one and only snapshot
            for block in batch:
                if not self._upload_block(block):
                    return False
            return True
        finally:
            self._draining = False

    def _upload_block(self, block: int) -> bool:
        """Drain one block: pop it from the dirty set, then upload.

        Popping first means a concurrent re-dirty re-queues the block
        for the *next* drain instead of racing this one.  An outage
        re-queues it too (at the tail) and stops the drain.
        """
        self._dirty.pop(block, None)
        if self.upload_now(block):
            return True
        self._dirty[block] = None
        return False

    def upload_now(self, block: int, *, force: bool = False) -> bool:
        """Upload ``block``'s current local content to the remote tier.

        The upload transaction, in order: the ``backend/upload``
        boundary event, the blob put (skipped on a dedup hit), the
        ``backend/commit`` boundary event, the map flip, then the
        refcount adjustments.  A crash between upload and commit
        strands at worst an orphan blob; a crash after the map flip but
        before the refcount writes leaves refcount drift — both are
        exactly the findings ``repro fsck-remote`` repairs.

        Transient failures retry with clock-charged backoff; an outage
        (or an exhausted retry budget) returns False and the caller
        keeps the block dirty.  ``force`` re-puts the blob even when
        the map already holds the current hash (fsck's missing-object
        repair).
        """
        data = self.disk.peek(block * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK)
        digest = content_hash(data)
        old = self._map.get(block)
        if old == digest and not force:
            self.stats.unchanged_skips += 1
            return True
        try:
            fresh_blob = self._commit_with_retries(block, digest, data, old, force)
        except BackendOutage:
            self.stats.outage_deferrals += 1
            return False
        self.stats.uploads += 1
        self.stats.bytes_uploaded += len(data)
        if not fresh_blob:
            self.stats.dedup_hits += 1
        return True

    def _commit_with_retries(
        self, block: int, digest: str, data: bytes, old: Optional[str], force: bool
    ) -> bool:
        """Retry loop around one upload transaction.

        The transaction is idempotent (absolute refcount values are
        recomputed from the unchanged mirror), so a retry after a
        partial failure simply re-issues the same puts.  Retry budget
        exhausted degrades to an outage: defer, never drop.
        """
        attempts = 0
        while True:
            try:
                return self._commit_once(block, digest, data, old, force)
            except BackendOutage:
                raise
            except TransientBackendError:
                attempts += 1
                self.stats.retries += 1
                if attempts > self.config.max_retries:
                    raise BackendOutage(
                        f"upload of block {block} exhausted "
                        f"{self.config.max_retries} retries"
                    )
                if self.clock is not None:
                    self.clock.consume(
                        self.config.retry_backoff_ns << (attempts - 1)
                    )

    def _commit_once(
        self, block: int, digest: str, data: bytes, old: Optional[str], force: bool
    ) -> bool:
        """One attempt at the upload transaction; returns blob freshness.

        Boundary events are emitted *before* the remote writes they
        announce, mirroring the store/flush boundary discipline — an
        armed crash at the event sequence number dies with the remote
        untouched by this attempt's writes.
        """
        remote = self.remote
        refs = self._refs
        fresh_blob = refs.get(digest, 0) == 0
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit(
                "backend", "upload",
                block=block, content=digest[:16], bytes=len(data),
            )
        if fresh_blob or force:
            remote.put(obj_key(digest), data)
        if rec is not None and rec.enabled:
            rec.emit("backend", "commit", block=block, content=digest[:16])
        remote.put(map_key(block), digest.encode("ascii"))
        if old != digest:
            remote.put(
                ref_key(digest), str(refs.get(digest, 0) + 1).encode("ascii")
            )
            old_count = refs.get(old, 1) - 1 if old is not None else 0
            if old is not None:
                if old_count <= 0:
                    remote.delete(obj_key(old))
                    remote.delete(ref_key(old))
                else:
                    remote.put(ref_key(old), str(old_count).encode("ascii"))
            # Every remote write landed: fold the result into the mirror.
            refs[digest] = refs.get(digest, 0) + 1
            if old is not None:
                if old_count <= 0:
                    refs.pop(old, None)
                else:
                    refs[old] = old_count
        self._map[block] = digest
        return fresh_blob

    # -- the read path --------------------------------------------------

    def get_block(self, block: int) -> Optional[bytes]:
        """Read one block from the remote tier (None when unmapped).

        Sequential read-ahead: a remote read prefetches the next
        ``readahead`` mapped blocks into a single-use buffer, so a
        linear scan pays one latency round-trip per window instead of
        per block.
        """
        self._ensure_mirror()
        cached = self._readahead.pop(block, None)
        if cached is not None:
            self.stats.readahead_hits += 1
            return cached
        digest = self._map.get(block)
        if digest is None:
            return None
        data = self.remote.get(obj_key(digest))
        self.stats.remote_reads += 1
        window = self.config.readahead
        if window:
            ahead = sorted(b for b in self._map if b > block)[:window]
            for nxt in ahead:
                if nxt not in self._readahead:
                    self._readahead[nxt] = self.remote.get(
                        obj_key(self._map[nxt])
                    )
                    self.stats.readahead_fills += 1
        return data

    def materialize(self) -> bytes:
        """The full device image, reconstructed from the remote tier alone.

        Unmapped blocks come back as zeros — a block with no map entry
        either was never flushed or holds all-zero content fsck-remote
        chose not to map, so zeros reconstruct it exactly.  This
        is the remote-recovery audit's raw material: if the image
        mounts and replays every acknowledged op, the remote tier alone
        is sufficient to honor the promise ledger.
        """
        self._ensure_mirror()
        total_blocks = self.disk.num_sectors // SECTORS_PER_BLOCK
        image = bytearray(total_blocks * BLOCK_SIZE)
        for block in range(total_blocks):
            data = self.get_block(block)
            if data is not None:
                image[block * BLOCK_SIZE:(block + 1) * BLOCK_SIZE] = data
        return bytes(image)

    # -- the seal -------------------------------------------------------

    def local_image_sha256(self) -> str:
        """Digest of the entire local device (the seal's local half)."""
        return hashlib.sha256(
            bytes(self.disk.peek(0, self.disk.num_sectors))
        ).hexdigest()

    def map_digest(self) -> str:
        """Digest of the remote block map (the seal's remote half)."""
        self._ensure_mirror()
        h = hashlib.sha256()
        for block in sorted(self._map):
            h.update(f"{block}:{self._map[block]}\n".encode("ascii"))
        return h.hexdigest()

    def seal_payload(self) -> bytes:
        """The canonical seal blob for the current local+remote state."""
        return (
            f"image:{self.local_image_sha256()}\n"
            f"maps:{self.map_digest()}\n"
        ).encode("ascii")

    def write_seal(self) -> bool:
        """Record that local and remote are reconciled (fsck fast path).

        Refuses while blocks are dirty; returns False (never raises) on
        a transient failure or outage — a missing seal only costs the
        next fsck-remote a full scan.
        """
        if self._dirty:
            return False
        try:
            self.remote.put(SEAL_KEY, self.seal_payload())
        except TransientBackendError:
            return False
        return True

    def read_seal(self) -> Optional[bytes]:
        """The stored seal blob, or None when absent."""
        try:
            return self.remote.get(SEAL_KEY)
        except KeyError:
            return None

    # -- observability --------------------------------------------------

    def dirty_blocks(self) -> List[int]:
        """The dirty queue, in flush order (observability)."""
        return list(self._dirty)

    def mapped_blocks(self) -> List[int]:
        """Every block with a remote map entry, sorted."""
        self._ensure_mirror()
        return sorted(self._map)

    def to_json_dict(self) -> Dict[str, object]:
        """Stats + queue depth summary for reports."""
        return {
            "backend": self.remote.name,
            "dirty": len(self._dirty),
            "stats": self.stats.to_json_dict(),
            "remote_stats": self.remote.stats.to_json_dict(),
        }
