"""The ``local`` backend: the current single-tier path, wrapped.

This is the null object of the backend family — an in-process blob map
whose requests never fail transiently and whose service time defaults
to zero, so a tiered store mounted over it behaves exactly like the
existing local-disk-only stack (the local disk already paid the real
I/O cost through :mod:`repro.disk.device`; mirroring a block into this
backend is a memory copy on the same machine).  It exists so every
remote-tier code path — upload boundaries, fsck-remote, the
materialized-image audit — can be exercised without any latency or
failure model in the way.

An optional flat per-request cost (``latency_ns``) can be charged
against the machine clock for benchmarks that want the copy visible in
virtual time.
"""

from __future__ import annotations

from repro.backend.common import DictBackend


class LocalBackend(DictBackend):
    """In-process store: never fails transiently, free by default."""

    name = "local"

    def __init__(self, *, clock=None, latency_ns: int = 0) -> None:
        super().__init__()
        self._clock = clock
        self.latency_ns = latency_ns

    def attach(self, clock) -> None:
        """Point the backend at the machine clock (idempotent)."""
        self._clock = clock

    def _charge(self) -> None:
        if self._clock is not None and self.latency_ns:
            self.stats.service_ns += self.latency_ns
            self._clock.consume(self.latency_ns)

    def _get(self, key: str) -> bytes:
        self._charge()
        return super()._get(key)

    def _put(self, key: str, data: bytes) -> None:
        self._charge()
        super()._put(key, data)

    def _delete(self, key: str) -> None:
        self._charge()
        super()._delete(key)

    def _list(self, prefix: str):
        self._charge()
        return super()._list(prefix)
