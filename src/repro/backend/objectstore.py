"""The ``objectstore`` backend: a seeded model of a remote blob store.

Everything a real object store does to you, deterministically:

* **latency + bandwidth** — each request costs a flat per-request
  latency plus payload-size over bandwidth, plus a seeded jitter draw,
  charged against the simulated machine clock (virtual time, the only
  clock in the repo);
* **transient failures** — a seeded percentage of requests raise
  :class:`TransientBackendError` (the retryable 5xx of the model);
* **outage windows** — :meth:`set_down` / :meth:`fail_for` make every
  request raise :class:`BackendOutage` until the store is brought back
  (or the window's virtual deadline passes);
* **chaos hooks** — an installed
  :class:`~repro.faults.capabilities.ChaosRegistry` is consulted per
  request: ``backend_outage`` fires an outage rejection,
  ``backend_fail`` a transient failure, and ``slow_io`` stretches the
  service time through the same :meth:`ChaosRegistry.io_service_ns`
  path the disks use — so the existing chaos campaign knobs compose
  with the remote tier unchanged.

Same seed, same call stream → same failures at the same requests and
the same nanoseconds of service, on either execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.common import BackendOutage, DictBackend, TransientBackendError
from repro.util.prng import DeterministicRandom


@dataclass(frozen=True)
class ObjectStoreConfig:
    """The deterministic performance/failure model of one object store."""

    #: Flat per-request service cost (ns); the round-trip floor.
    latency_ns: int = 2_000_000
    #: Payload transfer rate (bytes per virtual second).
    bandwidth_bytes_per_sec: int = 20_000_000
    #: Upper bound of the seeded uniform per-request jitter (ns).
    jitter_ns: int = 500_000
    #: Percent of requests that fail retryably (0 = reliable).
    transient_fail_pct: int = 0
    #: Seed for the jitter/failure PRNG.
    seed: int = 0


class ObjectStoreBackend(DictBackend):
    """Blob map behind a seeded latency, bandwidth and failure model."""

    name = "objectstore"

    def __init__(self, config: ObjectStoreConfig | None = None, *, clock=None) -> None:
        super().__init__()
        self.config = config or ObjectStoreConfig()
        self._clock = clock
        self._rng = DeterministicRandom(self.config.seed ^ 0x0B15C0DE)
        self._down = False
        self._down_until_ns: int | None = None

    def attach(self, clock) -> None:
        """Point the backend at the machine clock (idempotent)."""
        self._clock = clock

    # -- outage control -------------------------------------------------

    def set_down(self, down: bool) -> None:
        """Open (or close) an indefinite outage window."""
        self._down = down
        if not down:
            self._down_until_ns = None

    def fail_for(self, duration_ns: int) -> None:
        """Outage until the machine clock passes ``now + duration_ns``."""
        if self._clock is None:
            raise TransientBackendError("fail_for needs an attached clock")
        self._down_until_ns = self._clock.now_ns + duration_ns

    @property
    def down(self) -> bool:
        """True while requests are being rejected with an outage."""
        if self._down:
            return True
        if self._down_until_ns is None:
            return False
        if self._clock is not None and self._clock.now_ns >= self._down_until_ns:
            self._down_until_ns = None
            return False
        return True

    # -- the per-request gate -------------------------------------------

    def _gate(self, nbytes: int) -> None:
        """Outage/failure checks, then the service-time charge.

        Evaluated in a fixed order (outage, chaos outage, chaos fail,
        seeded fail, service charge) so the PRNG draw sequence is a pure
        function of the call stream.
        """
        if self.down:
            self.stats.outage_rejections += 1
            raise BackendOutage("object store is down")
        chaos = self.chaos
        if chaos is not None and chaos.should_fail("backend_outage"):
            self.stats.outage_rejections += 1
            raise BackendOutage("chaos: backend outage")
        if chaos is not None and chaos.should_fail("backend_fail"):
            self.stats.transient_errors += 1
            raise TransientBackendError("chaos: transient backend failure")
        config = self.config
        if config.transient_fail_pct and (
            self._rng.randrange(100) < config.transient_fail_pct
        ):
            self.stats.transient_errors += 1
            raise TransientBackendError("seeded transient backend failure")
        service = config.latency_ns
        if nbytes and config.bandwidth_bytes_per_sec:
            service += (nbytes * 1_000_000_000) // config.bandwidth_bytes_per_sec
        if config.jitter_ns:
            service += self._rng.randrange(config.jitter_ns)
        if chaos is not None:
            service = chaos.io_service_ns(service)
        self.stats.service_ns += service
        if self._clock is not None:
            self._clock.consume(service)

    # -- the verbs, gated -----------------------------------------------

    def _get(self, key: str) -> bytes:
        blob = self._blobs.get(key)
        # Gate before reporting absence: during an outage you cannot
        # know a key is missing, so the outage wins.
        self._gate(len(blob) if blob is not None else 0)
        if blob is None:
            raise KeyError(f"no such backend object: {key}")
        return blob

    def _put(self, key: str, data: bytes) -> None:
        self._gate(len(data))
        super()._put(key, data)

    def _delete(self, key: str) -> None:
        self._gate(0)
        super()._delete(key)

    def _list(self, prefix: str):
        self._gate(0)
        return super()._list(prefix)
