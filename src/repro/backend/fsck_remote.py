"""Remote-tier fsck: reconcile the local cache against the object store.

s3ql's fsck model, pointed at the tiered store's remote schema.  The
local disk is the recovery authority — it survived the crash, its own
fsck already ran — so every divergence is resolved *toward* the local
image:

* **stale map** — ``map/<block>`` names a hash that does not match the
  local block's current content (a crash rolled the local block back,
  or an upload committed content the crash then discarded).  Repair:
  re-upload the local content.
* **missing object** — a map entry points at an ``obj/`` blob that does
  not exist (crash between the ``backend/commit`` map flip and a retry
  that never happened, or a repair interrupted mid-flight).  Repair:
  re-upload the local content with a forced blob put.
* **unmapped block** — a non-zero local block with no map entry (a
  crash discarded the dirty queue before the block ever uploaded).
  Repair: upload it.  All-zero local blocks stay unmapped — zeros are
  the materialization default.
* **orphan object** — an ``obj/`` blob no map entry references (crash
  between the ``backend/upload`` blob put and the map flip).  Deleting
  data needs consent: repaired only under ``batch``, otherwise counted
  in ``needs_batch`` and left in place.
* **refcount drift** — ``ref/<hash>`` disagrees with the number of map
  entries actually naming ``<hash>`` (crash between the map flip and
  the refcount writes).  Repair: rewrite the true count.

Flag semantics follow s3ql: ``--batch`` consents to every repair
without prompting (this repo has no prompts, so non-batch simply
*reports* consent-needing findings instead of acting on them);
``--force`` checks even when a valid seal says the tiers are already
reconciled.

The check runs inside :meth:`ChaosRegistry.calm` when a chaos registry
is installed — recovery is never chaos-denied, matching how the disk
tier's fsck is exempt from fault injection — but a *real* outage
(:meth:`ObjectStoreBackend.set_down`) still rejects every request, in
which case the whole check defers (``deferred=True``) exactly like
s3ql refusing to fsck an unreachable bucket.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.backend.common import BackendOutage, TransientBackendError
from repro.backend.tiered import (
    OBJ_PREFIX,
    REF_PREFIX,
    TieredStore,
    content_hash,
    obj_key,
    ref_key,
)
from repro.fs.types import SECTORS_PER_BLOCK


@dataclass
class RemoteFsckReport:
    """What one remote-tier check found, fixed, and left behind."""

    batch: bool = False
    force: bool = False
    #: The seal matched: local and remote verified reconciled, no scan.
    sealed: bool = False
    #: The store was unreachable; nothing was verified.
    deferred: bool = False
    scanned_blocks: int = 0
    stale_maps: int = 0
    missing_objects: int = 0
    unmapped_blocks: int = 0
    orphan_objects: int = 0
    refcount_drift: int = 0
    #: Repairs successfully applied.
    repairs: int = 0
    #: Consent-needing findings left in place because ``batch`` was off.
    needs_batch: int = 0
    #: Repairs attempted but not applied (store went down mid-repair).
    unrepaired: int = 0
    findings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Everything verified and every finding repaired."""
        return not self.deferred and self.needs_batch == 0 and self.unrepaired == 0

    @property
    def clean(self) -> bool:
        """Nothing was wrong in the first place."""
        return not self.deferred and not self.findings

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-safe wire form (digest material)."""
        return {
            "batch": self.batch,
            "force": self.force,
            "sealed": self.sealed,
            "deferred": self.deferred,
            "scanned_blocks": self.scanned_blocks,
            "stale_maps": self.stale_maps,
            "missing_objects": self.missing_objects,
            "unmapped_blocks": self.unmapped_blocks,
            "orphan_objects": self.orphan_objects,
            "refcount_drift": self.refcount_drift,
            "repairs": self.repairs,
            "needs_batch": self.needs_batch,
            "unrepaired": self.unrepaired,
            "findings": list(self.findings),
        }

    def digest(self) -> str:
        """sha256 of the canonical JSON form."""
        return hashlib.sha256(
            json.dumps(self.to_json_dict(), sort_keys=True).encode("utf-8")
        ).hexdigest()

    def format(self) -> str:
        """Human-readable transcript (the CLI's output)."""
        lines = ["remote fsck" + (" --batch" if self.batch else "")
                 + (" --force" if self.force else "")]
        if self.deferred:
            lines.append("  DEFERRED: object store unreachable; nothing verified")
            return "\n".join(lines)
        if self.sealed:
            lines.append("  seal valid: local and remote already reconciled")
            return "\n".join(lines)
        lines.append(f"  scanned {self.scanned_blocks} blocks")
        for finding in self.findings:
            lines.append(f"  - {finding}")
        lines.append(
            f"  stale={self.stale_maps} missing={self.missing_objects} "
            f"unmapped={self.unmapped_blocks} orphans={self.orphan_objects} "
            f"drift={self.refcount_drift}"
        )
        lines.append(
            f"  repairs={self.repairs} needs_batch={self.needs_batch} "
            f"unrepaired={self.unrepaired} -> "
            + ("clean" if self.clean else ("ok" if self.ok else "NOT ok"))
        )
        return "\n".join(lines)


def _with_retries(store: TieredStore, op: Callable[[], object]) -> object:
    """Run one remote operation with the store's retry budget.

    Transient failures retry with clock-charged backoff; exhaustion
    degrades to :class:`BackendOutage` so the whole check defers
    instead of half-repairing.
    """
    attempts = 0
    while True:
        try:
            return op()
        except BackendOutage:
            raise
        except TransientBackendError:
            attempts += 1
            if attempts > store.config.max_retries:
                raise BackendOutage("remote fsck exhausted its retry budget")
            if store.clock is not None:
                store.clock.consume(store.config.retry_backoff_ns << (attempts - 1))


def fsck_remote(
    store: TieredStore, *, batch: bool = False, force: bool = False
) -> RemoteFsckReport:
    """Check (and under ``batch``, fully repair) the remote tier.

    Never raises for store weather: an outage at any point returns a
    ``deferred`` report.  After a clean ``batch`` run the remote tier
    is a faithful mirror of the local disk — every non-zero local
    block mapped to a blob holding its exact content, no orphans, no
    drift — and a fresh seal records that.
    """
    report = RemoteFsckReport(batch=batch, force=force)
    chaos = store.remote.chaos
    calm = chaos.calm() if chaos is not None else nullcontext()
    with calm:
        try:
            _check(store, report, batch=batch, force=force)
        except BackendOutage:
            report.deferred = True
    return report


def _check(store: TieredStore, report: RemoteFsckReport, *, batch: bool, force: bool) -> None:
    """The scan/repair body; raises :class:`BackendOutage` to defer."""
    remote = store.remote
    _with_retries(store, store._ensure_mirror)

    if not force and not store.dirty_blocks():
        seal = _with_retries(store, store.read_seal)
        if seal is not None and seal == store.seal_payload():
            report.sealed = True
            return

    total_blocks = store.disk.num_sectors // SECTORS_PER_BLOCK
    report.scanned_blocks = total_blocks
    obj_hashes = {
        key[len(OBJ_PREFIX):]
        for key in _with_retries(store, lambda: remote.list(OBJ_PREFIX))
    }

    # Pass 0: reconcile refcounts against the map mirror FIRST.  Later
    # repair uploads decrement the old content's count and delete blobs
    # that reach zero — with a drifted count that could delete a blob
    # another map entry still references, so the counts must be true
    # before any repair runs.
    referenced: Dict[str, int] = {}
    for digest in store._map.values():
        referenced[digest] = referenced.get(digest, 0) + 1
    stored_refs = {
        key[len(REF_PREFIX):]
        for key in _with_retries(store, lambda: remote.list(REF_PREFIX))
    }
    for digest in sorted(set(referenced) | stored_refs):
        true_count = referenced.get(digest, 0)
        if true_count == 0:
            # Blob present: the orphan sweep (pass 2) owns it and its
            # ref key.  Ref with neither blob nor map: consent-gated.
            if digest not in obj_hashes:
                report.refcount_drift += 1
                report.findings.append(
                    f"ref {digest[:16]}: counts a blob that does not exist"
                )
                if batch:
                    _with_retries(store, lambda d=digest: remote.delete(ref_key(d)))
                    report.repairs += 1
                else:
                    report.needs_batch += 1
            continue
        stored = None
        if digest in stored_refs:
            raw = _with_retries(store, lambda d=digest: remote.get(ref_key(d)))
            stored = int(raw.decode("ascii"))
        if stored != true_count:
            report.refcount_drift += 1
            report.findings.append(
                f"ref {digest[:16]}: stored {stored} but {true_count} "
                "map entries reference it"
            )
            _with_retries(
                store,
                lambda d=digest, c=true_count: remote.put(
                    ref_key(d), str(c).encode("ascii")
                ),
            )
            report.repairs += 1
    store._refs = dict(referenced)

    # Pass 1: every local block against its map entry (local is truth).
    # Repairs go through the ordinary upload transaction, which keeps
    # the map/ref mirrors and the remote schema consistent as it goes;
    # obj_hashes tracks the additions so a hash uploaded by an earlier
    # repair is not re-flagged as missing.
    for block in range(total_blocks):
        data = bytes(store.disk.peek(block * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK))
        local_hash = content_hash(data)
        mapped = store._map.get(block)
        if mapped is None:
            if any(data):
                report.unmapped_blocks += 1
                report.findings.append(
                    f"block {block}: local content never uploaded"
                )
                _repair_upload(store, report, block, local_hash, obj_hashes)
        elif mapped != local_hash:
            report.stale_maps += 1
            report.findings.append(
                f"block {block}: map names {mapped[:16]} but local holds "
                f"{local_hash[:16]}"
            )
            _repair_upload(store, report, block, local_hash, obj_hashes)
        elif mapped not in obj_hashes:
            report.missing_objects += 1
            report.findings.append(
                f"block {block}: mapped object {mapped[:16]} missing"
            )
            _repair_upload(
                store, report, block, local_hash, obj_hashes, force_blob=True
            )

    # Pass 2: orphan objects (blobs no surviving map entry references).
    # Deleting data needs batch consent.
    live = set(store._map.values())
    current_objs = {
        key[len(OBJ_PREFIX):]
        for key in _with_retries(store, lambda: remote.list(OBJ_PREFIX))
    }
    for digest in sorted(current_objs - live):
        report.orphan_objects += 1
        report.findings.append(f"object {digest[:16]}: orphaned (unreferenced)")
        if batch:
            _with_retries(store, lambda d=digest: remote.delete(obj_key(d)))
            _with_retries(store, lambda d=digest: remote.delete(ref_key(d)))
            report.repairs += 1
        else:
            report.needs_batch += 1

    # Reconciled (as far as consent allowed): seal when fully clean.
    if report.needs_batch == 0 and report.unrepaired == 0 and not store.dirty_blocks():
        _with_retries(store, store.write_seal)


def _repair_upload(
    store: TieredStore,
    report: RemoteFsckReport,
    block: int,
    local_hash: str,
    obj_hashes,
    *,
    force_blob: bool = False,
) -> None:
    """Re-upload one local block as a repair (local is the authority)."""
    if store.upload_now(block, force=force_blob):
        report.repairs += 1
        obj_hashes.add(local_hash)
    else:
        report.unrepaired += 1
