"""The object-store protocol every backing tier implements.

An s3ql-style store: named immutable blobs behind four verbs —
``get``/``put``/``delete``/``list`` — plus a typed error taxonomy that
separates *weather* from *wreckage*:

* :class:`TransientBackendError` — this request failed but a retry may
  succeed (a dropped connection, a 5xx, a throttle).  Callers with a
  retry budget spend it here.
* :class:`BackendOutage` — the store is unreachable as a whole; retrying
  now is pointless.  Callers defer the work (the tiered store keeps the
  block dirty locally and re-offers it at the next drain).
* :class:`BackendError` — fatal: a malformed key, a protocol violation.
  Nothing retries these; they are bugs, not weather.

Keys are flat strings namespaced by convention (``obj/<sha256>``,
``map/<block>``, ``ref/<sha256>``, ``seal`` — see
:mod:`repro.backend.tiered`).  ``list`` returns keys sorted, always:
listing order is digest material and must not depend on insertion
history.

Determinism contract: a backend's observable behavior (service times,
transient failures, outage windows) is a pure function of its
construction seed and its call stream.  No wall clock, no ambient
randomness — the simulated machine clock is the only time source.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class BackendError(Exception):
    """Fatal backend failure: a bug or protocol violation, never retried."""


class TransientBackendError(BackendError):
    """This request failed; an identical retry may succeed."""


class BackendOutage(TransientBackendError):
    """The store is unreachable as a whole; defer instead of retrying."""


@dataclass
class BackendStats:
    """Operation counters one backend accumulates (observability only)."""

    gets: int = 0
    puts: int = 0
    deletes: int = 0
    lists: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: Requests denied retryably (transient errors and chaos denials).
    transient_errors: int = 0
    #: Requests rejected because the store was down.
    outage_rejections: int = 0
    #: Total virtual time charged for service (ns).
    service_ns: int = 0

    def to_json_dict(self) -> Dict[str, int]:
        """JSON-safe counter summary for reports and digests."""
        return dict(self.__dict__)


class Backend:
    """Abstract object store; subclasses implement the four verbs.

    Subclasses override the underscore hooks (``_get``/``_put``/
    ``_delete``/``_list``/``_contains``); the public verbs validate
    keys, keep the counters, and are the only entry points callers use.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.stats = BackendStats()
        #: Optional :class:`~repro.faults.capabilities.ChaosRegistry`;
        #: implementations consult it per request (see objectstore).
        self.chaos = None

    # -- the four verbs (plus contains) --------------------------------

    def get(self, key: str) -> bytes:
        """Return the blob at ``key``; raises :class:`KeyError` if absent."""
        self._check_key(key)
        self.stats.gets += 1
        data = self._get(key)
        self.stats.bytes_out += len(data)
        return data

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` at ``key``, overwriting any previous blob."""
        self._check_key(key)
        self.stats.puts += 1
        self.stats.bytes_in += len(data)
        self._put(key, bytes(data))

    def delete(self, key: str) -> None:
        """Remove ``key`` (idempotent: absent keys delete silently)."""
        self._check_key(key)
        self.stats.deletes += 1
        self._delete(key)

    def list(self, prefix: str = "") -> List[str]:
        """Every key starting with ``prefix``, sorted."""
        self.stats.lists += 1
        return self._list(prefix)

    def contains(self, key: str) -> bool:
        """True when ``key`` holds a blob (charged like a metadata get)."""
        self._check_key(key)
        return self._contains(key)

    # -- subclass hooks -------------------------------------------------

    def _get(self, key: str) -> bytes:
        raise NotImplementedError

    def _put(self, key: str, data: bytes) -> None:
        raise NotImplementedError

    def _delete(self, key: str) -> None:
        raise NotImplementedError

    def _list(self, prefix: str) -> List[str]:
        raise NotImplementedError

    def _contains(self, key: str) -> bool:
        raise NotImplementedError

    # -- shared plumbing ------------------------------------------------

    @staticmethod
    def _check_key(key: str) -> None:
        """Reject keys the protocol cannot represent."""
        if not key or "\n" in key or len(key) > 256:
            raise BackendError(f"malformed backend key {key!r}")

    def digest(self) -> str:
        """sha256 over the sorted ``key -> sha256(content)`` map.

        The determinism fixture: two stores with identical contents have
        identical digests regardless of operation history.
        """
        h = hashlib.sha256()
        for key in self.list():
            h.update(key.encode())
            h.update(b"\x00")
            h.update(hashlib.sha256(self._get(key)).digest())
            h.update(b"\n")
        return h.hexdigest()


class DictBackend(Backend):
    """Shared in-memory blob map the concrete backends build on."""

    def __init__(self) -> None:
        super().__init__()
        self._blobs: Dict[str, bytes] = {}

    def _get(self, key: str) -> bytes:
        try:
            return self._blobs[key]
        except KeyError:
            raise KeyError(f"no such backend object: {key}") from None

    def _put(self, key: str, data: bytes) -> None:
        self._blobs[key] = data

    def _delete(self, key: str) -> None:
        self._blobs.pop(key, None)

    def _list(self, prefix: str) -> List[str]:
        return sorted(k for k in self._blobs if k.startswith(prefix))

    def _contains(self, key: str) -> bool:
        return key in self._blobs

    def object_count(self) -> int:
        """Number of stored blobs (observability)."""
        return len(self._blobs)

    def total_bytes(self) -> int:
        """Total stored payload bytes (observability)."""
        return sum(len(v) for v in self._blobs.values())
