"""The remote-tier recovery audit: can the object store alone pay the acks?

The local-tier audit (:meth:`AckJournal.audit`) asks the recovered file
system to produce every acknowledged byte.  This module asks a harder
question of the remote tier: after recovery and reconcile, *throw the
local disk away* — materialize the full device image from the object
store, fsck it, mount it on a scratch machine, and replay the promise
ledger against that.  ``ok`` means no acknowledged operation depends on
a dirty block that never uploaded: the remote tier alone reconstructs
every promise.

The dissect second opinion rides along, exactly as in the local
campaigns: the materialized image is dissected *before* the scratch
mount, the scratch fsck's verdict is compared against it
(:func:`~repro.fs.dissect.compare_verdicts`), and findings fsck itself
disclosed at the same location are filtered as agreement-with-
disclosure (:func:`~repro.fs.dissect.fsck_acknowledged`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, List, Optional

from repro.backend.common import BackendOutage
from repro.backend.fsck_remote import RemoteFsckReport, fsck_remote
from repro.backend.tiered import TieredStore
from repro.fs.types import BLOCK_SIZE


@dataclass
class RemoteCheck:
    """Everything one remote-tier recovery audit concluded."""

    #: The reconcile pass that ran first (None when it never started).
    reconcile: Optional[RemoteFsckReport] = None
    #: Acked operations the materialized image could not reproduce.
    lost: List[str] = field(default_factory=list)
    #: fsck-vs-dissect agreement over the materialized image.
    divergence: Any = None
    #: sha256 of the materialized image (digest material).
    image_sha256: Optional[str] = None
    #: Repairs the scratch fsck applied to the materialized image.
    image_fsck_fixes: int = 0
    #: The store was unreachable; the audit could not run.
    deferred: bool = False
    #: The audit machinery itself failed (never expected; spec-fatal).
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """The remote tier alone honored every acknowledged operation."""
        if self.error is not None or self.deferred:
            return False
        if self.lost:
            return False
        if self.reconcile is not None and not self.reconcile.ok:
            return False
        if self.divergence is not None and not self.divergence.agreed:
            return False
        return True

    def to_json_dict(self) -> dict:
        """JSON-safe wire form for reports and digests."""
        return {
            "reconcile": self.reconcile.to_json_dict() if self.reconcile else None,
            "lost": list(self.lost),
            "divergence": (
                self.divergence.to_json_dict()
                if self.divergence is not None
                else None
            ),
            "image_sha256": self.image_sha256,
            "image_fsck_fixes": self.image_fsck_fixes,
            "deferred": self.deferred,
            "error": self.error,
            "ok": self.ok,
        }


def mount_materialized(store: TieredStore):
    """Materialize the remote tier and boot a scratch system from it.

    Returns ``(system, reboot_report, image)``: a fresh simulated
    machine whose root disk holds exactly the object store's
    reconstruction, taken through the ordinary cold recovery chain
    (fsck, then mount).  Raises :class:`BackendOutage` when the store
    is unreachable.
    """
    image = store.materialize()
    system, report = _mount_image(image)
    return system, report, image


def _mount_image(image: bytes):
    """Boot a scratch system over an installed raw image (cold path)."""
    from repro.fs.dissect import install
    from repro.system import SystemSpec, build_system

    blocks = len(image) // BLOCK_SIZE
    system = build_system(SystemSpec(fs_type="ufs", policy="ufs", fs_blocks=blocks))
    system.crash("remote-tier audit mount", kind="audit")
    install(system.disk, image)
    report = system.reboot(preserve_memory=False)
    return system, report


def remote_recovery_audit(system, journal) -> RemoteCheck:
    """Run the full remote-tier audit over a recovered system.

    Sequence: flush the recovered local state and drain the upload
    queue (the recovered reality is what remote must mirror), reconcile
    with ``fsck_remote --batch --force``, materialize, dissect, scratch-
    mount, and audit the promise ledger against the scratch VFS.  An
    outage at any step defers the whole audit (``deferred=True``) — the
    spec treats a deferral during a declared outage window as
    legitimate, an undeclared one as a violation.
    """
    store = getattr(system, "backing", None)
    if store is None:
        return RemoteCheck(error="system has no backing store installed")
    check = RemoteCheck()
    try:
        if system.disk is not None:
            system.fs.flush_data(sync=True)
            system.fs.flush_metadata(sync=True)
            system.drain_disks()
        store.drain_uploads()
        check.reconcile = fsck_remote(store, batch=True, force=True)
        if check.reconcile.deferred:
            check.deferred = True
            return check
        image = store.materialize()
    except BackendOutage:
        check.deferred = True
        return check
    check.image_sha256 = hashlib.sha256(image).hexdigest()

    from repro.fs.dissect import compare_verdicts, dissect_image, fsck_acknowledged

    scan = dissect_image(image)
    scratch, reboot_report = _mount_image(image)
    fsck_report = reboot_report.fsck
    check.image_fsck_fixes = fsck_report.fix_count if fsck_report is not None else 0
    fixes = list(getattr(fsck_report, "fixes", None) or [])
    undisclosed = [
        finding
        for finding in scan.findings
        if not fsck_acknowledged(str(getattr(finding, "where", "")), fixes)
    ]
    check.divergence = compare_verdicts(
        fsck_unrecoverable=fsck_report.unrecoverable if fsck_report else False,
        fsck_fix_count=fsck_report.fix_count if fsck_report else 0,
        report=replace(scan, findings=undisclosed),
    )
    audit = journal.audit(scratch.vfs)
    check.lost = list(audit.lost)
    return check
