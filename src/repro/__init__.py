"""repro — a reproduction of "The Rio File Cache: Surviving Operating
System Crashes" (Chen et al., ASPLOS 1996).

The package builds the paper's entire experimental stack as a
deterministic simulation: an Alpha-like machine (physical memory, MMU
with a KSEG window, a mini-ISA data plane), a Unix-like kernel with the
Digital Unix buffer cache / UBC split, UFS with fsck, AdvFS journaling,
MFS, a 13-type fault injector, the memTest / Andrew / cp+rm / Sdet
workloads, and harnesses that regenerate Table 1 (reliability) and
Table 2 (performance).

Quick start::

    from repro import SystemSpec, build_system, RioConfig

    system = build_system(SystemSpec(policy="rio", rio=RioConfig.with_protection()))
    fd = system.vfs.open("/hello", create=True)
    system.vfs.write(fd, b"files in memory, safe as disk")
    system.vfs.close(fd)

    system.crash("power stayed on, kernel didn't")
    report = system.reboot()          # warm reboot: dump, restore, fsck
    fd = system.vfs.open("/hello")
    assert system.vfs.read(fd, 64) == b"files in memory, safe as disk"
"""

from repro.core import ProtectionMode, RioConfig
from repro.errors import ReproError, SystemCrash
from repro.hw import Machine, MachineConfig
from repro.kernel import Kernel, KernelConfig
from repro.system import RebootReport, System, SystemSpec, build_system

__version__ = "1.0.0"

__all__ = [
    "ProtectionMode",
    "RioConfig",
    "ReproError",
    "SystemCrash",
    "Machine",
    "MachineConfig",
    "Kernel",
    "KernelConfig",
    "RebootReport",
    "System",
    "SystemSpec",
    "build_system",
    "__version__",
]
