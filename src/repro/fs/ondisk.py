"""On-disk structure serialization: superblock, inodes, directory entries.

All structures are little-endian, fixed-size records so that corruption is
byte-level and detectable: the superblock and every inode carry magic
numbers that ``fsck`` validates, exactly the kind of "consistency checks
present in a production operating system" the paper credits for limiting
crash damage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import FileSystemError
from repro.fs.types import (
    BLOCK_SIZE,
    FileType,
    MAX_NAME,
    N_DIRECT,
    ROOT_INO,
)

SUPERBLOCK_MAGIC = 0x52494F46  # "RIOF"
INODE_MAGIC = 0x494E
INODE_SIZE = 128
INODES_PER_BLOCK = BLOCK_SIZE // INODE_SIZE
DIRENT_SIZE = 32
DIRENTS_PER_BLOCK = BLOCK_SIZE // DIRENT_SIZE

_SUPERBLOCK_FMT = struct.Struct("<IIIIIIIIIIBB2x")
_INODE_FMT = struct.Struct("<HBxHxxQQ" + "I" * N_DIRECT + "II")
_DIRENT_FMT = struct.Struct("<IB27s")


class CorruptStructure(FileSystemError):
    """A deserialized structure failed its validity checks."""


@dataclass
class Superblock:
    """File system geometry and state.  Lives in block 0."""

    total_blocks: int
    bitmap_start: int
    bitmap_blocks: int
    inode_start: int
    inode_blocks: int
    data_start: int
    journal_start: int = 0
    journal_blocks: int = 0
    root_ino: int = ROOT_INO
    clean: bool = True
    mount_count: int = 0

    @property
    def num_inodes(self) -> int:
        return self.inode_blocks * INODES_PER_BLOCK

    @property
    def data_blocks(self) -> int:
        return self.total_blocks - self.data_start

    def to_bytes(self) -> bytes:
        packed = _SUPERBLOCK_FMT.pack(
            SUPERBLOCK_MAGIC,
            self.total_blocks,
            self.bitmap_start,
            self.bitmap_blocks,
            self.inode_start,
            self.inode_blocks,
            self.data_start,
            self.journal_start,
            self.journal_blocks,
            self.root_ino,
            1 if self.clean else 0,
            self.mount_count & 0xFF,
        )
        return packed + b"\x00" * (BLOCK_SIZE - len(packed))

    @classmethod
    def from_bytes(cls, data: bytes) -> "Superblock":
        if len(data) < _SUPERBLOCK_FMT.size:
            raise CorruptStructure("superblock truncated")
        (
            magic,
            total_blocks,
            bitmap_start,
            bitmap_blocks,
            inode_start,
            inode_blocks,
            data_start,
            journal_start,
            journal_blocks,
            root_ino,
            clean,
            mount_count,
        ) = _SUPERBLOCK_FMT.unpack(data[: _SUPERBLOCK_FMT.size])
        if magic != SUPERBLOCK_MAGIC:
            raise CorruptStructure(f"bad superblock magic {magic:#x}")
        if not (0 < data_start <= total_blocks):
            raise CorruptStructure("superblock geometry invalid")
        return cls(
            total_blocks=total_blocks,
            bitmap_start=bitmap_start,
            bitmap_blocks=bitmap_blocks,
            inode_start=inode_start,
            inode_blocks=inode_blocks,
            data_start=data_start,
            journal_start=journal_start,
            journal_blocks=journal_blocks,
            root_ino=root_ino,
            clean=bool(clean),
            mount_count=mount_count,
        )


@dataclass
class Inode:
    """An on-disk inode (128 bytes)."""

    ino: int
    ftype: FileType = FileType.FREE
    nlink: int = 0
    size: int = 0
    mtime_ns: int = 0
    direct: list[int] = field(default_factory=lambda: [0] * N_DIRECT)
    indirect: int = 0
    generation: int = 0

    @property
    def is_allocated(self) -> bool:
        return self.ftype != FileType.FREE

    def to_bytes(self) -> bytes:
        # Field widths are enforced by masking: a fault-corrupted in-core
        # inode (e.g. nlink driven negative) serializes to its on-disk
        # truncation, as real hardware would store it, rather than
        # raising a host-level struct error.
        return _INODE_FMT.pack(
            INODE_MAGIC,
            int(self.ftype) & 0xFF,
            self.nlink & 0xFFFF,
            self.size & (1 << 64) - 1,
            self.mtime_ns & (1 << 64) - 1,
            *[block & 0xFFFFFFFF for block in self.direct],
            self.indirect & 0xFFFFFFFF,
            self.generation & 0xFFFFFFFF,
        ) + b"\x00" * (INODE_SIZE - _INODE_FMT.size)

    @classmethod
    def from_bytes(cls, ino: int, data: bytes, *, strict: bool = True) -> "Inode":
        if len(data) < _INODE_FMT.size:
            raise CorruptStructure(f"inode {ino} truncated")
        fields = _INODE_FMT.unpack(data[: _INODE_FMT.size])
        magic, ftype_raw, nlink, size, mtime = fields[:5]
        direct = list(fields[5 : 5 + N_DIRECT])
        indirect, generation = fields[5 + N_DIRECT :]
        if magic != INODE_MAGIC:
            if strict:
                raise CorruptStructure(f"inode {ino}: bad magic {magic:#x}")
            ftype_raw = FileType.FREE
        try:
            ftype = FileType(ftype_raw)
        except ValueError:
            if strict:
                raise CorruptStructure(f"inode {ino}: bad type {ftype_raw}") from None
            ftype = FileType.FREE
        return cls(
            ino=ino,
            ftype=ftype,
            nlink=nlink,
            size=size,
            mtime_ns=mtime,
            direct=direct,
            indirect=indirect,
            generation=generation,
        )


@dataclass(frozen=True)
class DirEntry:
    """A fixed-size directory record (32 bytes)."""

    ino: int
    name: str

    def to_bytes(self) -> bytes:
        encoded = self.name.encode()
        if not 0 < len(encoded) <= MAX_NAME:
            raise FileSystemError(f"name length {len(encoded)} invalid")
        return _DIRENT_FMT.pack(self.ino & 0xFFFFFFFF, len(encoded), encoded)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DirEntry | None":
        """Parse one record; returns None for an empty (ino==0) slot or a
        record too mangled to interpret."""
        if len(data) < DIRENT_SIZE:
            return None
        ino, name_len, raw = _DIRENT_FMT.unpack(data[:DIRENT_SIZE])
        if ino == 0:
            return None
        if name_len == 0 or name_len > MAX_NAME:
            return None
        try:
            name = raw[:name_len].decode()
        except UnicodeDecodeError:
            return None
        return cls(ino=ino, name=name)


def pack_dirents(entries: list[DirEntry], nblocks: int) -> bytes:
    """Serialize directory entries into ``nblocks`` worth of records."""
    out = bytearray()
    for entry in entries:
        out += entry.to_bytes()
    capacity = nblocks * BLOCK_SIZE
    if len(out) > capacity:
        raise FileSystemError("directory overflow")
    return bytes(out) + b"\x00" * (capacity - len(out))


def parse_dirents(data: bytes) -> list[DirEntry]:
    """Parse every valid record out of directory content bytes."""
    entries = []
    for off in range(0, len(data) - DIRENT_SIZE + 1, DIRENT_SIZE):
        entry = DirEntry.from_bytes(data[off : off + DIRENT_SIZE])
        if entry is not None:
            entries.append(entry)
    return entries
