"""On-disk structure serialization: superblock, inodes, directory entries.

All structures are little-endian, fixed-size records so that corruption is
byte-level and detectable: the superblock and every inode carry magic
numbers that ``fsck`` validates, exactly the kind of "consistency checks
present in a production operating system" the paper credits for limiting
crash damage.

Layout version 2 grows the superblock into a proper FFS-style record:

* a ``version`` field and a fixed 256-byte checksummed header, so a torn
  or stale superblock is detectable even when the magic survives;
* a Fletcher-32 checksum over the header (checksum field zeroed during
  the computation);
* cylinder-group-style *region summaries* — one 16-byte record per
  on-disk region (superblock, bitmap, inode table, journal, data,
  backup superblock) — derived from the geometry at serialization time
  and cross-validated against it at parse time.

Deserializers never raise a bare ``struct.error``: every failure mode —
truncation, bad magic, unsupported version, checksum mismatch, impossible
geometry, summary disagreement — raises :class:`CorruptStructure`.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.errors import FileSystemError
from repro.fs.types import (
    BLOCK_SIZE,
    FileType,
    MAX_NAME,
    N_DIRECT,
    ROOT_INO,
)
from repro.util.checksum import fletcher32

SUPERBLOCK_MAGIC = 0x52494F46  # "RIOF"
#: On-disk layout version.  v1 had an unversioned, unchecksummed
#: superblock; v2 (current) adds the version/checksum header and the
#: region summary table.
ONDISK_VERSION = 2
#: The checksummed span at the start of the superblock's block.
SUPERBLOCK_HEADER_SIZE = 256
#: Byte offset of the checksum field inside the header.
SUPERBLOCK_CHECKSUM_OFFSET = 48
#: Byte offset of the first region summary record.
REGION_SUMMARY_OFFSET = 64
#: Magic of one region summary record ("RG", little-endian).
REGION_SUMMARY_MAGIC = 0x4752
REGION_SUMMARY_SIZE = 16

INODE_MAGIC = 0x494E
INODE_SIZE = 128
INODES_PER_BLOCK = BLOCK_SIZE // INODE_SIZE
DIRENT_SIZE = 32
DIRENTS_PER_BLOCK = BLOCK_SIZE // DIRENT_SIZE

# magic, version, header_size, 9 geometry/identity words, clean,
# mount_count, summary_count, pad, checksum, pad to REGION_SUMMARY_OFFSET.
_SB_HEADER_FMT = struct.Struct("<IHH" + "I" * 9 + "BBBB" + "I" + "12x")
_SB_SUMMARY_FMT = struct.Struct("<HBxIII")
_INODE_FMT = struct.Struct("<HBxHxxQQ" + "I" * N_DIRECT + "II")
_DIRENT_FMT = struct.Struct("<IB27s")

assert _SB_HEADER_FMT.size == REGION_SUMMARY_OFFSET
assert _SB_SUMMARY_FMT.size == REGION_SUMMARY_SIZE


class CorruptStructure(FileSystemError):
    """A deserialized structure failed its validity checks."""


class RegionKind(enum.IntEnum):
    """What a region summary record describes."""

    SUPER = 1
    BITMAP = 2
    INODE = 3
    JOURNAL = 4
    DATA = 5
    BACKUP = 6


@dataclass
class Superblock:
    """File system geometry and state.  Lives in block 0."""

    total_blocks: int
    bitmap_start: int
    bitmap_blocks: int
    inode_start: int
    inode_blocks: int
    data_start: int
    journal_start: int = 0
    journal_blocks: int = 0
    root_ino: int = ROOT_INO
    clean: bool = True
    mount_count: int = 0

    @property
    def num_inodes(self) -> int:
        return self.inode_blocks * INODES_PER_BLOCK

    @property
    def data_blocks(self) -> int:
        return self.total_blocks - self.data_start

    def region_summaries(self) -> list[tuple[RegionKind, int, int]]:
        """The (kind, start, blocks) summary records this geometry implies.

        Derived, never stored in the dataclass: serialization writes them
        and deserialization cross-checks them against the geometry words,
        so a corruption that flips one but not the other is detectable.
        """
        regions = [
            (RegionKind.SUPER, 0, 1),
            (RegionKind.BITMAP, self.bitmap_start, self.bitmap_blocks),
            (RegionKind.INODE, self.inode_start, self.inode_blocks),
        ]
        if self.journal_blocks:
            regions.append((RegionKind.JOURNAL, self.journal_start, self.journal_blocks))
        regions.append(
            (RegionKind.DATA, self.data_start, self.total_blocks - 1 - self.data_start)
        )
        regions.append((RegionKind.BACKUP, self.total_blocks - 1, 1))
        return regions

    def to_bytes(self) -> bytes:
        # Field widths are enforced by masking (as Inode does): a
        # fault-corrupted in-core superblock serializes to its on-disk
        # truncation rather than raising a host-level struct error.
        summaries = self.region_summaries()
        header = bytearray(SUPERBLOCK_HEADER_SIZE)
        _SB_HEADER_FMT.pack_into(
            header,
            0,
            SUPERBLOCK_MAGIC,
            ONDISK_VERSION,
            SUPERBLOCK_HEADER_SIZE,
            self.total_blocks & 0xFFFFFFFF,
            self.bitmap_start & 0xFFFFFFFF,
            self.bitmap_blocks & 0xFFFFFFFF,
            self.inode_start & 0xFFFFFFFF,
            self.inode_blocks & 0xFFFFFFFF,
            self.data_start & 0xFFFFFFFF,
            self.journal_start & 0xFFFFFFFF,
            self.journal_blocks & 0xFFFFFFFF,
            self.root_ino & 0xFFFFFFFF,
            1 if self.clean else 0,
            self.mount_count & 0xFF,
            len(summaries),
            0,
            0,  # checksum placeholder
        )
        for index, (kind, start, blocks) in enumerate(summaries):
            _SB_SUMMARY_FMT.pack_into(
                header,
                REGION_SUMMARY_OFFSET + index * REGION_SUMMARY_SIZE,
                REGION_SUMMARY_MAGIC,
                int(kind) & 0xFF,
                start & 0xFFFFFFFF,
                blocks & 0xFFFFFFFF,
                0,
            )
        checksum = fletcher32(bytes(header))
        struct.pack_into("<I", header, SUPERBLOCK_CHECKSUM_OFFSET, checksum)
        return bytes(header) + b"\x00" * (BLOCK_SIZE - SUPERBLOCK_HEADER_SIZE)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Superblock":
        if len(data) < SUPERBLOCK_HEADER_SIZE:
            raise CorruptStructure("superblock truncated")
        (
            magic,
            version,
            header_size,
            total_blocks,
            bitmap_start,
            bitmap_blocks,
            inode_start,
            inode_blocks,
            data_start,
            journal_start,
            journal_blocks,
            root_ino,
            clean,
            mount_count,
            summary_count,
            _pad,
            checksum,
        ) = _SB_HEADER_FMT.unpack_from(data, 0)
        if magic != SUPERBLOCK_MAGIC:
            raise CorruptStructure(f"bad superblock magic {magic:#x}")
        if version != ONDISK_VERSION:
            raise CorruptStructure(f"unsupported layout version {version}")
        if header_size != SUPERBLOCK_HEADER_SIZE:
            raise CorruptStructure(f"bad superblock header size {header_size}")
        zeroed = bytearray(data[:SUPERBLOCK_HEADER_SIZE])
        zeroed[SUPERBLOCK_CHECKSUM_OFFSET : SUPERBLOCK_CHECKSUM_OFFSET + 4] = b"\x00" * 4
        if fletcher32(bytes(zeroed)) != checksum:
            raise CorruptStructure("superblock checksum mismatch (torn or stale write)")
        sb = cls(
            total_blocks=total_blocks,
            bitmap_start=bitmap_start,
            bitmap_blocks=bitmap_blocks,
            inode_start=inode_start,
            inode_blocks=inode_blocks,
            data_start=data_start,
            journal_start=journal_start,
            journal_blocks=journal_blocks,
            root_ino=root_ino,
            clean=bool(clean),
            mount_count=mount_count,
        )
        sb._validate_geometry()
        expected = sb.region_summaries()
        if summary_count != len(expected):
            raise CorruptStructure(
                f"superblock summary count {summary_count} != {len(expected)}"
            )
        for index, (kind, start, blocks) in enumerate(expected):
            record = _SB_SUMMARY_FMT.unpack_from(
                data, REGION_SUMMARY_OFFSET + index * REGION_SUMMARY_SIZE
            )
            if record != (REGION_SUMMARY_MAGIC, int(kind), start, blocks, 0):
                raise CorruptStructure(
                    f"superblock region summary {index} disagrees with geometry"
                )
        return sb

    def _validate_geometry(self) -> None:
        """Raise :class:`CorruptStructure` unless the regions are ordered
        and non-overlapping: super < bitmap < inodes [< journal] < data,
        with the backup superblock in the last block."""
        if not (0 < self.data_start <= self.total_blocks):
            raise CorruptStructure("superblock geometry invalid")
        if self.bitmap_start < 1 or self.bitmap_blocks < 1:
            raise CorruptStructure("superblock bitmap region invalid")
        if self.bitmap_blocks * BLOCK_SIZE * 8 < self.total_blocks:
            raise CorruptStructure("superblock bitmap too small for total blocks")
        if self.inode_start < self.bitmap_start + self.bitmap_blocks:
            raise CorruptStructure("superblock inode region overlaps bitmap")
        if self.inode_blocks < 1:
            raise CorruptStructure("superblock inode region empty")
        metadata_end = self.inode_start + self.inode_blocks
        if self.journal_blocks:
            if self.journal_start < metadata_end:
                raise CorruptStructure("superblock journal region overlaps inodes")
            metadata_end = self.journal_start + self.journal_blocks
        if self.data_start < metadata_end:
            raise CorruptStructure("superblock data region overlaps metadata")
        if not (0 < self.root_ino < self.num_inodes):
            raise CorruptStructure(f"superblock root inode {self.root_ino} out of range")


@dataclass
class Inode:
    """An on-disk inode (128 bytes)."""

    ino: int
    ftype: FileType = FileType.FREE
    nlink: int = 0
    size: int = 0
    mtime_ns: int = 0
    direct: list[int] = field(default_factory=lambda: [0] * N_DIRECT)
    indirect: int = 0
    generation: int = 0

    @property
    def is_allocated(self) -> bool:
        return self.ftype != FileType.FREE

    def to_bytes(self) -> bytes:
        # Field widths are enforced by masking: a fault-corrupted in-core
        # inode (e.g. nlink driven negative) serializes to its on-disk
        # truncation, as real hardware would store it, rather than
        # raising a host-level struct error.
        if len(self.direct) != N_DIRECT:
            raise FileSystemError(
                f"inode {self.ino}: {len(self.direct)} direct pointers"
            )
        return _INODE_FMT.pack(
            INODE_MAGIC,
            int(self.ftype) & 0xFF,
            self.nlink & 0xFFFF,
            self.size & (1 << 64) - 1,
            self.mtime_ns & (1 << 64) - 1,
            *[block & 0xFFFFFFFF for block in self.direct],
            self.indirect & 0xFFFFFFFF,
            self.generation & 0xFFFFFFFF,
        ) + b"\x00" * (INODE_SIZE - _INODE_FMT.size)

    @classmethod
    def from_bytes(cls, ino: int, data: bytes, *, strict: bool = True) -> "Inode":
        if len(data) < _INODE_FMT.size:
            raise CorruptStructure(f"inode {ino} truncated")
        fields = _INODE_FMT.unpack(data[: _INODE_FMT.size])
        magic, ftype_raw, nlink, size, mtime = fields[:5]
        direct = list(fields[5 : 5 + N_DIRECT])
        indirect, generation = fields[5 + N_DIRECT :]
        if magic != INODE_MAGIC:
            if strict:
                raise CorruptStructure(f"inode {ino}: bad magic {magic:#x}")
            ftype_raw = FileType.FREE
        try:
            ftype = FileType(ftype_raw)
        except ValueError:
            if strict:
                raise CorruptStructure(f"inode {ino}: bad type {ftype_raw}") from None
            ftype = FileType.FREE
        return cls(
            ino=ino,
            ftype=ftype,
            nlink=nlink,
            size=size,
            mtime_ns=mtime,
            direct=direct,
            indirect=indirect,
            generation=generation,
        )


@dataclass(frozen=True)
class DirEntry:
    """A fixed-size directory record (32 bytes)."""

    ino: int
    name: str

    def to_bytes(self) -> bytes:
        encoded = self.name.encode()
        if not 0 < len(encoded) <= MAX_NAME:
            raise FileSystemError(f"name length {len(encoded)} invalid")
        if b"\x00" in encoded:
            raise FileSystemError("name contains NUL")
        return _DIRENT_FMT.pack(self.ino & 0xFFFFFFFF, len(encoded), encoded)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DirEntry | None":
        """Parse one record; returns None for an empty (ino==0) slot or a
        record too mangled to interpret."""
        if len(data) < DIRENT_SIZE:
            return None
        ino, name_len, raw = _DIRENT_FMT.unpack(data[:DIRENT_SIZE])
        if ino == 0:
            return None
        if name_len == 0 or name_len > MAX_NAME:
            return None
        raw = raw[:name_len]
        if b"\x00" in raw:
            return None
        try:
            name = raw.decode()
        except UnicodeDecodeError:
            return None
        return cls(ino=ino, name=name)


def pack_dirents(entries: list[DirEntry], nblocks: int) -> bytes:
    """Serialize directory entries into ``nblocks`` worth of records."""
    out = bytearray()
    for entry in entries:
        out += entry.to_bytes()
    capacity = nblocks * BLOCK_SIZE
    if len(out) > capacity:
        raise FileSystemError("directory overflow")
    return bytes(out) + b"\x00" * (capacity - len(out))


def parse_dirents(data: bytes) -> list[DirEntry]:
    """Parse every valid record out of directory content bytes."""
    entries = []
    for off in range(0, len(data) - DIRENT_SIZE + 1, DIRENT_SIZE):
        entry = DirEntry.from_bytes(data[off : off + DIRENT_SIZE])
        if entry is not None:
            entries.append(entry)
    return entries
