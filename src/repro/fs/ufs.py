"""UFS: the Unix file system the paper's systems are built on.

Inodes (12 direct pointers + one indirect block), fixed-record
directories with ``.``/``..``, a block bitmap, and a superblock — all
byte-serialized on the simulated disk and cached per the Digital Unix
split: metadata (inodes, directories, bitmap, indirect blocks) in the
buffer cache, regular file data in the UBC.

Write-back behaviour is delegated to a :class:`~repro.fs.writeback.WritePolicy`,
which is how one code base provides the UFS / no-order / write-through /
Rio rows of Table 2.

Crash-consistency habits of real FFS are preserved where they matter:
metadata updates within an operation are committed in update order
(inode initialised before the directory entry that names it; directory
entry removed before the inode is freed), and fsck can repair the
orphans/leaks a badly-timed crash leaves behind.
"""

from __future__ import annotations

import functools
from contextlib import nullcontext
from dataclasses import dataclass

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    FileSystemError,
    InvalidArgument,
    IsADirectory,
    KernelPanic,
    NoSpace,
    NotADirectory,
)
from repro.fs.allocator import BlockAllocator
from repro.fs.cache import CachePage, IO_CONTEXT
from repro.fs.ondisk import (
    CorruptStructure,
    DIRENT_SIZE,
    DirEntry,
    INODES_PER_BLOCK,
    INODE_SIZE,
    Inode,
    Superblock,
)
from repro.fs.types import (
    BLOCK_SIZE,
    FileId,
    FileType,
    MAX_FILE_BLOCKS,
    MAX_FILE_SIZE,
    MAX_NAME,
    N_DIRECT,
    PTRS_PER_INDIRECT,
    ROOT_INO,
    SECTORS_PER_BLOCK,
)
from repro.fs.writeback import RioPolicy, WritePolicy

LOST_FOUND_INO = 3


@dataclass
class UFSParams:
    """mkfs-time geometry."""

    total_blocks: int
    inode_blocks: int = 8
    journal_blocks: int = 0

    def geometry(self) -> Superblock:
        """Compute the on-disk layout for these parameters."""
        bitmap_blocks = -(-self.total_blocks // (BLOCK_SIZE * 8))
        inode_start = 1 + bitmap_blocks
        journal_start = inode_start + self.inode_blocks
        data_start = journal_start + self.journal_blocks
        if data_start + 2 > self.total_blocks:
            raise InvalidArgument("file system too small for its metadata")
        return Superblock(
            total_blocks=self.total_blocks,
            bitmap_start=1,
            bitmap_blocks=bitmap_blocks,
            inode_start=inode_start,
            inode_blocks=self.inode_blocks,
            data_start=data_start,
            journal_start=journal_start if self.journal_blocks else 0,
            journal_blocks=self.journal_blocks,
        )


def _fs_op(method):
    """Wrap a public operation: commit touched metadata on success."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        result = method(self, *args, **kwargs)
        self._commit_metadata()
        return result

    return wrapper


class UFS:
    """A mounted UFS instance."""

    fs_type = "ufs"

    def __init__(self, kernel, dev: int, policy: WritePolicy | None = None) -> None:
        self.kernel = kernel
        self.dev = dev
        self.policy = policy or RioPolicy()
        self.disk = kernel.block_device(dev)
        self.sb: Superblock | None = None
        self.allocator: BlockAllocator | None = None
        self._free_inos: list[int] = []
        self._meta_touched: list[CachePage] = []
        self.mounted = False

    # ------------------------------------------------------------------
    # mkfs
    # ------------------------------------------------------------------

    @staticmethod
    def mkfs(disk, params: UFSParams) -> Superblock:
        """Create a fresh file system (offline: raw sector pokes)."""
        sb = params.geometry()
        root_blk = sb.data_start
        lf_blk = sb.data_start + 1
        backup_sb_blk = sb.total_blocks - 1

        disk.poke(0, sb.to_bytes())
        # Backup superblock in the last block (fsck's fallback copy).
        disk.poke(backup_sb_blk * SECTORS_PER_BLOCK, sb.to_bytes())

        bitmap = bytearray(sb.bitmap_blocks * BLOCK_SIZE)
        for block_no in list(range(sb.data_start)) + [root_blk, lf_blk, backup_sb_blk]:
            bitmap[block_no // 8] |= 1 << (block_no % 8)
        disk.poke(sb.bitmap_start * SECTORS_PER_BLOCK, bytes(bitmap))

        inodes = bytearray(sb.inode_blocks * BLOCK_SIZE)

        def put_inode(inode: Inode) -> None:
            off = inode.ino * INODE_SIZE
            inodes[off : off + INODE_SIZE] = inode.to_bytes()

        root = Inode(ino=ROOT_INO, ftype=FileType.DIRECTORY, nlink=3, size=BLOCK_SIZE)
        root.direct[0] = root_blk
        put_inode(root)
        lost_found = Inode(
            ino=LOST_FOUND_INO, ftype=FileType.DIRECTORY, nlink=2, size=BLOCK_SIZE
        )
        lost_found.direct[0] = lf_blk
        put_inode(lost_found)
        disk.poke(sb.inode_start * SECTORS_PER_BLOCK, bytes(inodes))

        def dir_block(entries: list[DirEntry]) -> bytes:
            data = b"".join(e.to_bytes() for e in entries)
            return data + b"\x00" * (BLOCK_SIZE - len(data))

        disk.poke(
            root_blk * SECTORS_PER_BLOCK,
            dir_block(
                [
                    DirEntry(ROOT_INO, "."),
                    DirEntry(ROOT_INO, ".."),
                    DirEntry(LOST_FOUND_INO, "lost+found"),
                ]
            ),
        )
        disk.poke(
            lf_blk * SECTORS_PER_BLOCK,
            dir_block([DirEntry(LOST_FOUND_INO, "."), DirEntry(ROOT_INO, "..")]),
        )
        return sb

    # ------------------------------------------------------------------
    # mount / unmount
    # ------------------------------------------------------------------

    @_fs_op
    def mount(self) -> None:
        """Mount: parse the superblock, scan free inodes, mark unclean."""
        raw = self.read_meta(0, 0, BLOCK_SIZE, meta_class="super")
        self.sb = Superblock.from_bytes(raw)
        self.allocator = BlockAllocator(self)
        self._scan_free_inodes()
        self.sb.clean = False
        self.sb.mount_count += 1
        self._write_superblock()
        self.kernel.register_filesystem(self.dev, self)
        self.mounted = True

    def unmount(self) -> None:
        """Administrative unmount: flush everything regardless of policy."""
        self.flush_data(sync=True)
        self.flush_metadata(sync=True)
        self.sb.clean = True
        self._write_superblock()
        self._commit_metadata()
        self.flush_metadata(sync=True)
        self.disk.drain()
        self.mounted = False

    def _write_superblock(self) -> None:
        self.write_meta(0, 0, self.sb.to_bytes(), meta_class="super")

    def _scan_free_inodes(self) -> None:
        self._free_inos = []
        for ino in range(self.sb.num_inodes - 1, ROOT_INO, -1):
            if ino == LOST_FOUND_INO:
                continue
            inode = self._iget_raw(ino, strict=False)
            if not inode.is_allocated:
                self._free_inos.append(ino)

    # ------------------------------------------------------------------
    # metadata access through the buffer cache
    # ------------------------------------------------------------------

    def _meta_page(self, block_no: int, meta_class: str | None) -> CachePage:
        cache = self.kernel.buffer_cache

        def loader(page: CachePage) -> None:
            cache.fill(page, self.disk.read(block_no * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK))

        page = cache.get(
            ("meta", self.dev, block_no), loader=loader, disk_block=block_no
        )
        if meta_class is not None:
            page.meta_class = meta_class
        return page

    def _fresh_meta_page(self, block_no: int, meta_class: str) -> CachePage:
        """A metadata page for a newly allocated block (no disk read).

        The page is marked dirty — a freshly allocated metadata block must
        eventually reach the disk even if nothing else is written to it."""
        cache = self.kernel.buffer_cache
        page = cache.get(
            ("meta", self.dev, block_no),
            loader=lambda p: cache.fill(p, b"\x00" * BLOCK_SIZE),
            disk_block=block_no,
        )
        page.meta_class = meta_class
        cache.set_dirty(page, True)
        self._touch_meta(page)
        return page

    def read_meta(self, block_no: int, offset: int, length: int, *, meta_class: str | None = None) -> bytes:
        """Read metadata bytes through the buffer cache."""
        page = self._meta_page(block_no, meta_class)
        return self.kernel.buffer_cache.read(page, offset, length)

    def write_meta(
        self,
        block_no: int,
        offset: int,
        data: bytes,
        *,
        meta_class: str | None = None,
        defer: bool = False,
    ) -> None:
        """Update metadata bytes through the buffer cache.

        ``defer=True`` marks the page dirty without handing it to the
        write policy this operation — FFS semantics for non-structural
        updates (e.g. a size-only inode change), which reach disk via the
        update daemon or fsync rather than a synchronous write."""
        page = self._meta_page(block_no, meta_class)
        self.kernel.buffer_cache.write_into(page, offset, data, IO_CONTEXT)
        if not defer:
            self._touch_meta(page)

    def _touch_meta(self, page: CachePage) -> None:
        if page not in self._meta_touched:
            self._meta_touched.append(page)

    def _commit_metadata(self) -> None:
        """End of operation: hand the dirtied metadata pages, in update
        order, to the write policy."""
        pages, self._meta_touched = self._meta_touched, []
        if pages:
            self.policy.on_metadata_pages(self, pages)

    # ------------------------------------------------------------------
    # inodes
    # ------------------------------------------------------------------

    def _inode_location(self, ino: int) -> tuple[int, int]:
        if not 0 < ino < self.sb.num_inodes:
            raise FileNotFound(f"inode {ino} out of range")
        return (
            self.sb.inode_start + ino // INODES_PER_BLOCK,
            (ino % INODES_PER_BLOCK) * INODE_SIZE,
        )

    def _iget_raw(self, ino: int, *, strict: bool) -> Inode:
        block_no, offset = self._inode_location(ino)
        raw = self.read_meta(block_no, offset, INODE_SIZE, meta_class="inode")
        if raw == b"\x00" * INODE_SIZE:
            return Inode(ino=ino)  # never-used slot: a valid free inode
        return Inode.from_bytes(ino, raw, strict=strict)

    def iget(self, ino: int) -> Inode:
        """Fetch an allocated inode; a mangled one is a kernel panic —
        the sanity check a production kernel applies on inode fetch."""
        try:
            inode = self._iget_raw(ino, strict=True)
        except CorruptStructure as exc:
            raise KernelPanic(f"iget: {exc}") from exc
        if not inode.is_allocated:
            raise FileNotFound(f"inode {ino} not allocated")
        return inode

    def write_inode(self, inode: Inode, *, defer: bool = False) -> None:
        """Serialize an inode back into its table block (``defer`` skips
        the policy: FFS semantics for non-structural updates)."""
        block_no, offset = self._inode_location(inode.ino)
        self.write_meta(
            block_no, offset, inode.to_bytes(), meta_class="inode", defer=defer
        )

    def ialloc(self, ftype: FileType) -> Inode:
        """Allocate an inode of ``ftype`` (generation bumped)."""
        with self.kernel.locks.lock("inode_table"):
            if not self._free_inos:
                raise NoSpace("out of inodes")
            ino = self._free_inos.pop()
            old = self._iget_raw(ino, strict=False)
            inode = Inode(ino=ino, ftype=ftype, nlink=0, generation=old.generation + 1)
            inode.mtime_ns = self.kernel.clock.now_ns
            self.write_inode(inode)
            return inode

    def ifree(self, inode: Inode) -> None:
        """Free an inode back to the table."""
        with self.kernel.locks.lock("inode_table"):
            self.write_inode(Inode(ino=inode.ino, generation=inode.generation))
            self._free_inos.append(inode.ino)

    # ------------------------------------------------------------------
    # block mapping
    # ------------------------------------------------------------------

    def balloc(self) -> int:
        """Allocate a data block (the allocator takes the bitmap lock)."""
        return self.allocator.alloc()

    def bfree(self, block_no: int) -> None:
        """Free a data block (the allocator takes the bitmap lock)."""
        self.allocator.free(block_no)

    def bmap(self, inode: Inode, file_block: int, *, allocate: bool = False) -> int:
        """Map a file block index to a disk block (0 = hole).

        With ``allocate=True``, holes are filled; the caller must
        ``write_inode`` afterwards (the in-memory inode is mutated).
        """
        if file_block >= MAX_FILE_BLOCKS:
            raise InvalidArgument("file too large")
        if file_block < N_DIRECT:
            block = inode.direct[file_block]
            if block == 0 and allocate:
                block = self.balloc()
                inode.direct[file_block] = block
            return block
        index = file_block - N_DIRECT
        if inode.indirect == 0:
            if not allocate:
                return 0
            inode.indirect = self.balloc()
            self._fresh_meta_page(inode.indirect, "indirect")
        raw = self.read_meta(inode.indirect, index * 4, 4, meta_class="indirect")
        block = int.from_bytes(raw, "little")
        if block == 0 and allocate:
            block = self.balloc()
            self.write_meta(
                inode.indirect, index * 4, block.to_bytes(4, "little"), meta_class="indirect"
            )
        return block

    def _file_blocks(self, inode: Inode) -> list[int]:
        """All allocated data blocks of a file, in file order."""
        blocks = [b for b in inode.direct if b]
        if inode.indirect:
            raw = self.read_meta(inode.indirect, 0, BLOCK_SIZE, meta_class="indirect")
            for i in range(PTRS_PER_INDIRECT):
                block = int.from_bytes(raw[i * 4 : (i + 1) * 4], "little")
                if block:
                    blocks.append(block)
        return blocks

    def _free_file_blocks(self, inode: Inode) -> None:
        for block in self._file_blocks(inode):
            self.bfree(block)
        if inode.indirect:
            self.bfree(inode.indirect)
        inode.direct = [0] * N_DIRECT
        inode.indirect = 0

    # ------------------------------------------------------------------
    # directories
    # ------------------------------------------------------------------

    def _dir_blocks(self, dinode: Inode) -> list[int]:
        count = -(-dinode.size // BLOCK_SIZE)
        return [self.bmap(dinode, i) for i in range(count)]

    def dir_entries(self, dinode: Inode) -> list[DirEntry]:
        """All records of a directory, including "." and ".."."""
        entries: list[DirEntry] = []
        for block_no in self._dir_blocks(dinode):
            if block_no == 0:
                continue
            data = self.read_meta(block_no, 0, BLOCK_SIZE, meta_class="dir")
            for off in range(0, BLOCK_SIZE, DIRENT_SIZE):
                entry = DirEntry.from_bytes(data[off : off + DIRENT_SIZE])
                if entry is not None:
                    entries.append(entry)
        return entries

    def _find_dirent(self, dinode: Inode, name: str) -> tuple[int, int, DirEntry] | None:
        """Locate ``name``; returns (block_no, offset, entry)."""
        for block_no in self._dir_blocks(dinode):
            if block_no == 0:
                continue
            data = self.read_meta(block_no, 0, BLOCK_SIZE, meta_class="dir")
            for off in range(0, BLOCK_SIZE, DIRENT_SIZE):
                entry = DirEntry.from_bytes(data[off : off + DIRENT_SIZE])
                if entry is not None and entry.name == name:
                    return block_no, off, entry
        return None

    def dir_lookup(self, dinode: Inode, name: str) -> int | None:
        """Inode number for ``name`` in the directory, or None."""
        found = self._find_dirent(dinode, name)
        return found[2].ino if found else None

    def dir_add(self, dinode: Inode, name: str, ino: int) -> None:
        """Insert a record (growing the directory if full)."""
        with self.kernel.locks.lock(f"dir:{dinode.ino}"):
            record = DirEntry(ino, name).to_bytes()
            for block_no in self._dir_blocks(dinode):
                if block_no == 0:
                    continue
                data = self.read_meta(block_no, 0, BLOCK_SIZE, meta_class="dir")
                for off in range(0, BLOCK_SIZE, DIRENT_SIZE):
                    if data[off : off + 4] == b"\x00\x00\x00\x00":
                        self.write_meta(block_no, off, record, meta_class="dir")
                        return
            # Directory full: grow it by one block.
            file_block = dinode.size // BLOCK_SIZE
            block_no = self.bmap(dinode, file_block, allocate=True)
            self._fresh_meta_page(block_no, "dir")
            self.write_meta(block_no, 0, record, meta_class="dir")
            dinode.size += BLOCK_SIZE
            self.write_inode(dinode)

    def dir_remove(self, dinode: Inode, name: str) -> int:
        """Remove a record; returns the inode it named."""
        with self.kernel.locks.lock(f"dir:{dinode.ino}"):
            found = self._find_dirent(dinode, name)
            if found is None:
                raise FileNotFound(name)
            block_no, off, entry = found
            self.write_meta(block_no, off, b"\x00" * DIRENT_SIZE, meta_class="dir")
            return entry.ino

    # ------------------------------------------------------------------
    # path resolution
    # ------------------------------------------------------------------

    @staticmethod
    def _split_path(path: str) -> list[str]:
        if not path.startswith("/"):
            raise InvalidArgument(f"path must be absolute: {path!r}")
        parts = [p for p in path.split("/") if p]
        for part in parts:
            if len(part.encode()) > MAX_NAME:
                raise InvalidArgument(f"name too long: {part!r}")
        return parts

    #: Maximum symlink expansions during one resolution (ELOOP guard).
    MAX_SYMLINK_DEPTH = 8

    def namei(self, path: str, *, follow: bool = True) -> int:
        """Resolve a path to an inode number, following symlinks."""
        parts = list(self._split_path(path))
        ino = ROOT_INO
        expansions = 0
        index = 0
        while index < len(parts):
            part = parts[index]
            dinode = self.iget(ino)
            if dinode.ftype != FileType.DIRECTORY:
                raise NotADirectory(path)
            child = self.dir_lookup(dinode, part)
            if child is None:
                raise FileNotFound(path)
            child_inode = self.iget(child)
            is_last = index == len(parts) - 1
            if child_inode.ftype == FileType.SYMLINK and (follow or not is_last):
                expansions += 1
                if expansions > self.MAX_SYMLINK_DEPTH:
                    raise InvalidArgument(f"too many symlinks: {path!r}")
                target = self._read_symlink(child_inode)
                remainder = parts[index + 1 :]
                if target.startswith("/"):
                    parts = self._split_path(target) + remainder
                    ino = ROOT_INO
                else:
                    parts = [p for p in target.split("/") if p] + remainder
                index = 0
                continue
            ino = child
            index += 1
        return ino

    def namei_parent(self, path: str) -> tuple[Inode, str]:
        """Resolve to (parent directory inode, final component), following
        symlinks in the intermediate components."""
        parts = self._split_path(path)
        if not parts:
            raise InvalidArgument("path refers to the root directory")
        if len(parts) == 1:
            parent_ino = ROOT_INO
        else:
            parent_ino = self.namei("/" + "/".join(parts[:-1]))
        parent = self.iget(parent_ino)
        if parent.ftype != FileType.DIRECTORY:
            raise NotADirectory(path)
        return parent, parts[-1]

    # ------------------------------------------------------------------
    # file operations (ino-level; the VFS resolves paths and fds)
    # ------------------------------------------------------------------

    @_fs_op
    def create(self, path: str) -> int:
        """Create a regular file; returns its inode number."""
        parent, name = self.namei_parent(path)
        if self.dir_lookup(parent, name) is not None:
            raise FileExists(path)
        # Careful ordering (section 2.3): initialise the inode *before*
        # the directory entry that makes it reachable.
        inode = self.ialloc(FileType.REGULAR)
        inode.nlink = 1
        self.write_inode(inode)
        self.kernel.preemption_point()
        self.dir_add(parent, name, inode.ino)
        return inode.ino

    @_fs_op
    def mkdir(self, path: str) -> int:
        """Create a directory (with "." and "..")."""
        parent, name = self.namei_parent(path)
        if self.dir_lookup(parent, name) is not None:
            raise FileExists(path)
        inode = self.ialloc(FileType.DIRECTORY)
        block = self.bmap(inode, 0, allocate=True)
        self._fresh_meta_page(block, "dir")
        self.write_meta(
            block,
            0,
            DirEntry(inode.ino, ".").to_bytes() + DirEntry(parent.ino, "..").to_bytes(),
            meta_class="dir",
        )
        inode.size = BLOCK_SIZE
        inode.nlink = 2
        self.write_inode(inode)
        self.kernel.preemption_point()
        self.dir_add(parent, name, inode.ino)
        parent.nlink += 1
        self.write_inode(parent)
        return inode.ino

    @_fs_op
    def unlink(self, path: str) -> None:
        """Remove a name; free the file when its last name goes."""
        parent, name = self.namei_parent(path)
        ino = self.dir_lookup(parent, name)
        if ino is None:
            raise FileNotFound(path)
        inode = self.iget(ino)
        if inode.ftype == FileType.DIRECTORY:
            raise IsADirectory(path)
        # Careful ordering: unname first, then free.
        self.dir_remove(parent, name)
        self.kernel.preemption_point()
        inode.nlink -= 1
        if inode.nlink <= 0:
            self.kernel.ubc.invalidate_file(FileId(self.dev, ino))
            self._free_file_blocks(inode)
            self.ifree(inode)
        else:
            self.write_inode(inode)

    @_fs_op
    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        parent, name = self.namei_parent(path)
        ino = self.dir_lookup(parent, name)
        if ino is None:
            raise FileNotFound(path)
        inode = self.iget(ino)
        if inode.ftype != FileType.DIRECTORY:
            raise NotADirectory(path)
        entries = [e for e in self.dir_entries(inode) if e.name not in (".", "..")]
        if entries:
            raise DirectoryNotEmpty(path)
        self.dir_remove(parent, name)
        self.kernel.preemption_point()
        self._free_file_blocks(inode)
        self.ifree(inode)
        parent.nlink -= 1
        self.write_inode(parent)

    @_fs_op
    def rename(self, old_path: str, new_path: str) -> None:
        """Rename, replacing a non-directory target; fixes ".." and link
        counts for cross-directory directory moves."""
        old_parent, old_name = self.namei_parent(old_path)
        ino = self.dir_lookup(old_parent, old_name)
        if ino is None:
            raise FileNotFound(old_path)
        new_parent, new_name = self.namei_parent(new_path)
        existing = self.dir_lookup(new_parent, new_name)
        if existing is not None:
            if existing == ino:
                return
            target = self.iget(existing)
            if target.ftype == FileType.DIRECTORY:
                raise IsADirectory(new_path)
            self.dir_remove(new_parent, new_name)
            target.nlink -= 1
            if target.nlink <= 0:
                self.kernel.ubc.invalidate_file(FileId(self.dev, existing))
                self._free_file_blocks(target)
                self.ifree(target)
            else:
                self.write_inode(target)
        # Add the new name before removing the old: a crash in between
        # leaves an extra hard link, which fsck can repair; the reverse
        # order could lose the file entirely.
        self.dir_add(new_parent, new_name, ino)
        self.kernel.preemption_point()
        if new_parent.ino == old_parent.ino:
            # dir_add may have grown the directory; re-read for remove.
            old_parent = self.iget(old_parent.ino)
        self.dir_remove(old_parent, old_name)
        moved = self.iget(ino)
        if moved.ftype == FileType.DIRECTORY and new_parent.ino != old_parent.ino:
            # Fix "..", and the parents' link counts.
            found = self._find_dirent(moved, "..")
            if found is not None:
                self.write_meta(
                    found[0], found[1], DirEntry(new_parent.ino, "..").to_bytes(), meta_class="dir"
                )
            old_parent.nlink -= 1
            self.write_inode(old_parent)
            new_parent.nlink += 1
            self.write_inode(new_parent)

    # -- links ------------------------------------------------------------

    def _read_symlink(self, inode: Inode) -> str:
        block = inode.direct[0]
        if not block:
            raise FileNotFound(f"symlink inode {inode.ino} has no target block")
        raw = self.read_meta(block, 0, inode.size, meta_class="dir")
        try:
            return raw.decode()
        except UnicodeDecodeError as exc:
            raise KernelPanic(f"symlink {inode.ino}: garbled target") from exc

    @_fs_op
    def symlink(self, target: str, link_path: str) -> int:
        """Create a symbolic link at ``link_path`` pointing to ``target``.

        Like directories, symlink contents live in the buffer cache
        (section 2: "Directories, symbolic links, inodes, and superblocks
        are stored in the traditional Unix buffer cache")."""
        encoded = target.encode()
        if not 0 < len(encoded) <= BLOCK_SIZE:
            raise InvalidArgument("symlink target length invalid")
        parent, name = self.namei_parent(link_path)
        if self.dir_lookup(parent, name) is not None:
            raise FileExists(link_path)
        inode = self.ialloc(FileType.SYMLINK)
        block = self.bmap(inode, 0, allocate=True)
        self._fresh_meta_page(block, "dir")
        self.write_meta(block, 0, encoded, meta_class="dir")
        inode.size = len(encoded)
        inode.nlink = 1
        self.write_inode(inode)
        self.kernel.preemption_point()
        self.dir_add(parent, name, inode.ino)
        return inode.ino

    def readlink(self, path: str) -> str:
        """Return a symlink's target string (no following)."""
        ino = self.namei(path, follow=False)
        inode = self.iget(ino)
        if inode.ftype != FileType.SYMLINK:
            raise InvalidArgument(f"not a symlink: {path!r}")
        return self._read_symlink(inode)

    @_fs_op
    def link(self, existing: str, new_path: str) -> None:
        """Create a hard link (same inode, second name)."""
        ino = self.namei(existing)
        inode = self.iget(ino)
        if inode.ftype == FileType.DIRECTORY:
            raise IsADirectory(existing)
        parent, name = self.namei_parent(new_path)
        if self.dir_lookup(parent, name) is not None:
            raise FileExists(new_path)
        inode.nlink += 1
        self.write_inode(inode)
        self.kernel.preemption_point()
        self.dir_add(parent, name, inode.ino)

    # -- data path ------------------------------------------------------

    def _ubc_page(self, inode: Inode, file_block: int, disk_block: int) -> CachePage:
        ubc = self.kernel.ubc
        key = ("data", self.dev, inode.ino, file_block)

        def loader(page: CachePage) -> None:
            if disk_block:
                data = self.disk.read(disk_block * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK)
            else:
                data = b"\x00" * BLOCK_SIZE
            ubc.fill(page, data)

        page = ubc.get(
            key,
            loader=loader,
            file_id=FileId(self.dev, inode.ino),
            file_offset=file_block * BLOCK_SIZE,
            disk_block=disk_block or None,
        )
        if disk_block and page.disk_block != disk_block:
            ubc.set_placement(page, disk_block=disk_block)
        return page

    @_fs_op
    def write(self, ino: int, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset``; returns the byte count written."""
        if offset < 0:
            raise InvalidArgument("negative offset")
        inode = self.iget(ino)
        if inode.ftype != FileType.REGULAR:
            raise IsADirectory(f"inode {ino}")
        if offset + len(data) > MAX_FILE_SIZE:
            raise InvalidArgument("write beyond maximum file size")
        ubc = self.kernel.ubc
        pos = 0
        allocated = False
        try:
            while pos < len(data):
                cursor = offset + pos
                file_block, in_off = divmod(cursor, BLOCK_SIZE)
                take = min(BLOCK_SIZE - in_off, len(data) - pos)
                pre_block = self.bmap(inode, file_block)
                disk_block = pre_block
                disk_block = self.bmap(inode, file_block, allocate=True)
                if disk_block != pre_block:
                    allocated = True
                page = self._ubc_page(inode, file_block, pre_block)
                if page.disk_block != disk_block:
                    ubc.set_placement(page, disk_block=disk_block)
                ubc.write_into(page, in_off, data[pos : pos + take], IO_CONTEXT)
                self.policy.on_data_write(self, ino, page, cursor, take)
                pos += take
        except FileSystemError:
            # A mid-write error (allocation refused: no space, no page
            # frame) must leave a well-defined *partial* write, not
            # debris.  Every failure point sits before the failing
            # chunk's bytes land, so: revert that chunk's fresh block
            # (its pointer may already be on disk via the indirect
            # block, and a freed-then-reused block holds stale bytes
            # that a later size-extending write would resurrect —
            # bytes the acknowledgement audit never saw), then commit
            # the fully-written prefix so it is visible, exactly what
            # POSIX reports as a short write.  Crashes are not caught:
            # their debris is the point, and fsck owns it.
            self._revert_block_alloc(inode, file_block, pre_block, disk_block)
            if pos:
                inode.size = max(inode.size, offset + pos)
                inode.mtime_ns = self.kernel.clock.now_ns
                self.write_inode(inode, defer=not allocated)
            raise
        inode.size = max(inode.size, offset + len(data))
        inode.mtime_ns = self.kernel.clock.now_ns
        # A size/mtime-only update is not a structural change: it reaches
        # disk lazily.  Allocations must follow the policy's ordering.
        self.write_inode(inode, defer=not allocated)
        return len(data)

    def _revert_block_alloc(
        self, inode: Inode, file_block: int, pre_block: int, disk_block: int
    ) -> None:
        """Undo one :meth:`bmap` allocation a failed write cannot use.

        Restores the block pointer to ``pre_block`` and frees the fresh
        block.  Runs with fault injection calmed: error-path cleanup is
        kernel housekeeping, not a request to deny.
        """
        if disk_block == pre_block:
            return
        chaos = getattr(self.kernel, "chaos", None)
        with chaos.calm() if chaos is not None else nullcontext():
            if file_block < N_DIRECT:
                inode.direct[file_block] = pre_block
            else:
                self.write_meta(
                    inode.indirect,
                    (file_block - N_DIRECT) * 4,
                    pre_block.to_bytes(4, "little"),
                    meta_class="indirect",
                )
            self.bfree(disk_block)

    def read(self, ino: int, offset: int, length: int) -> bytes:
        """Read file bytes via the UBC (holes read as zeros)."""
        if offset < 0 or length < 0:
            raise InvalidArgument("negative read range")
        inode = self.iget(ino)
        if inode.ftype != FileType.REGULAR:
            raise IsADirectory(f"inode {ino}")
        length = max(0, min(length, inode.size - offset))
        out = bytearray()
        pos = 0
        while pos < length:
            cursor = offset + pos
            file_block, in_off = divmod(cursor, BLOCK_SIZE)
            take = min(BLOCK_SIZE - in_off, length - pos)
            disk_block = self.bmap(inode, file_block)
            page = self._ubc_page(inode, file_block, disk_block)
            out += self.kernel.ubc.read(page, in_off, take)
            pos += take
        self.kernel.charge_copy(length)  # copy-out to the user buffer
        return bytes(out)

    @_fs_op
    def truncate(self, ino: int, size: int = 0) -> None:
        """Truncate to zero: free all blocks, drop cached pages."""
        if size != 0:
            raise InvalidArgument("only truncate-to-zero is supported")
        inode = self.iget(ino)
        if inode.ftype != FileType.REGULAR:
            raise IsADirectory(f"inode {ino}")
        self.kernel.ubc.invalidate_file(FileId(self.dev, ino))
        self._free_file_blocks(inode)
        inode.size = 0
        inode.mtime_ns = self.kernel.clock.now_ns
        self.write_inode(inode)

    # -- stat / readdir ----------------------------------------------------

    def stat(self, path: str) -> Inode:
        """Resolve ``path`` and return its inode."""
        return self.iget(self.namei(path))

    def readdir(self, path: str) -> list[str]:
        """Sorted names in a directory ("." and ".." omitted)."""
        inode = self.iget(self.namei(path))
        if inode.ftype != FileType.DIRECTORY:
            raise NotADirectory(path)
        return sorted(
            e.name for e in self.dir_entries(inode) if e.name not in (".", "..")
        )

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves."""
        try:
            self.namei(path)
            return True
        except FileSystemError:
            return False

    def size_of(self, ino: int) -> int:
        """Current size in bytes of an allocated inode."""
        return self.iget(ino).size

    # ------------------------------------------------------------------
    # flushing (called by policies and daemons)
    # ------------------------------------------------------------------

    def flush_file(self, ino: int, *, sync: bool) -> None:
        """Write one file's dirty data pages to disk."""
        file_id = FileId(self.dev, ino)
        ubc = self.kernel.ubc
        for page in [p for p in ubc.pages.values() if p.file_id == file_id and p.dirty]:
            ubc.flush_page(page, sync=sync)

    def flush_data(self, *, sync: bool) -> None:
        """Write all dirty UBC pages to disk."""
        self.kernel.ubc.flush_all(sync=sync)

    def flush_metadata(self, *, sync: bool) -> None:
        """Write all dirty buffer-cache (metadata) pages to disk."""
        self.kernel.buffer_cache.flush_all(sync=sync)

    def flush_meta_page(self, page: CachePage, sync: bool) -> None:
        """Write one metadata page (policy callback target)."""
        self.kernel.buffer_cache.flush_page(page, sync=sync)

    def flush_page_sync(self, page: CachePage) -> None:
        """Synchronously write one data page (write-through policies)."""
        self.kernel.ubc.flush_page(page, sync=True)

    def fsync(self, ino: int) -> None:
        """Durability point for one file — dispatched to the policy."""
        self.policy.on_fsync(self, ino)

    def sync(self) -> None:
        """Whole-fs flush — dispatched to the policy."""
        self.policy.on_sync(self)

    def close_hook(self, ino: int) -> None:
        """Called on fd close — write-through-on-close's moment."""
        self.policy.on_close(self, ino)

    def periodic_flush(self) -> None:
        """The update daemon's entry point."""
        self.policy.periodic(self)

    # ------------------------------------------------------------------
    # warm-reboot restore interface
    # ------------------------------------------------------------------

    def inode_exists(self, ino: int) -> bool:
        """Warm-reboot restore interface: is this a live regular file?"""
        if not 0 < ino < self.sb.num_inodes:
            return False
        try:
            inode = self._iget_raw(ino, strict=False)
        except CorruptStructure:
            return False
        return inode.ftype == FileType.REGULAR

    def inode_size(self, ino: int) -> int:
        """Warm-reboot restore interface: size of an inode."""
        return self._iget_raw(ino, strict=False).size

    def write_by_ino(self, ino: int, offset: int, data: bytes) -> int:
        """Warm-reboot restore interface: by-inode write."""
        return self.write(ino, offset, data)

    # -- statistics -----------------------------------------------------------

    def statfs(self) -> dict:
        """Free-space summary (blocks, inodes)."""
        return {
            "total_blocks": self.sb.total_blocks,
            "free_blocks": self.allocator.count_free(),
            "free_inodes": len(self._free_inos),
            "block_size": BLOCK_SIZE,
        }
