"""Write-back policies: when does data become permanent?

Each policy reproduces one row of Table 2's "Data Permanent" column:

===========================  ==================================================
``rio``                      never written for reliability; memory *is* stable
``ufs_delayed``              data+metadata delayed 0-30 s (the "no-order"
                             optimal system of [Ganger94])
``advfs``                    metadata journaled sequentially, async; data 0-30 s
``ufs``                      data async after 64 KB / non-sequential / 30 s;
                             metadata synchronous (the Digital Unix default)
``wt_close``                 ufs + fsync on every close
``wt_write``                 synchronous data on every write (mount "sync"),
                             fsync on close — the only configuration with
                             reliability guarantees equal to Rio's
===========================  ==================================================

The MFS row of Table 2 is a separate file system (:mod:`repro.fs.mfs`),
not a policy.
"""

from __future__ import annotations

from dataclasses import dataclass


def _emit(fs, op: str, **payload) -> None:
    """Emit a ``wb`` policy-decision event when a recorder is running.

    The per-page flush events come from the cache layer; these record
    *why* a flush happened (threshold, fsync, the 30-second daemon).
    """
    rec = getattr(getattr(fs, "kernel", None), "recorder", None)
    if rec is not None and rec.enabled:
        rec.emit("wb", op, **payload)


def _drain_backend(fs) -> None:
    """Push the tiered store's upload queue at a durability point.

    The flush boundary is the upload boundary: wherever a policy makes
    data locally permanent (sync, fsync, write-through close), the
    remote tier gets the same batch.  The drain snapshots the dirty set
    *once* per call — the flushes issued just above may still be
    retiring, and any page re-dirtied while a slow remote drain is in
    flight waits for the *next* durability point instead of extending
    this one unboundedly (see
    :meth:`repro.backend.tiered.TieredStore.drain_uploads`).

    No-op (one attribute read) on systems without a backing store, so
    the classic single-tier stack is byte-for-byte unchanged.
    """
    backing = getattr(getattr(fs, "kernel", None), "backing", None)
    if backing is not None:
        backing.drain_uploads()


class WritePolicy:
    """Base policy: every hook is a no-op; subclasses override."""

    name = "base"
    data_permanent = "undefined"
    #: True if metadata updates are written synchronously in place.
    sync_metadata = False

    def on_data_write(self, fs, ino: int, page, offset: int, length: int) -> None:
        """Called after each file-data write lands in the UBC."""

    def on_metadata_pages(self, fs, pages) -> None:
        """Called once per operation with the metadata pages it dirtied,
        in update order."""

    def on_close(self, fs, ino: int) -> None:
        pass

    def on_fsync(self, fs, ino: int) -> None:
        _emit(fs, "fsync", ino=ino)
        fs.flush_file(ino, sync=True)
        fs.flush_metadata(sync=True)
        _drain_backend(fs)

    def on_sync(self, fs) -> None:
        _emit(fs, "sync", policy=self.name)
        fs.flush_data(sync=False)
        fs.flush_metadata(sync=False)
        _drain_backend(fs)

    def periodic(self, fs) -> None:
        """The 30-second update daemon."""


class RioPolicy(WritePolicy):
    """No reliability-induced writes at all (section 2.3): files in memory
    are as permanent as files on disk, so sync and fsync return
    immediately and nothing is flushed — disk writes happen only when a
    cache overflows."""

    name = "rio"
    data_permanent = "after write, synchronous (memory is stable)"

    def on_fsync(self, fs, ino: int) -> None:
        return  # "we modify sync and fsync calls to return immediately"

    def on_sync(self, fs) -> None:
        return


@dataclass
class _FileStream:
    accumulated: int = 0
    last_end: int | None = None


class UFSDefaultPolicy(WritePolicy):
    """Digital Unix UFS: asynchronous data after 64 KB is collected, on a
    non-sequential write, or at the 30-second update; synchronous metadata
    "to enforce ordering constraints" [Ganger94]."""

    name = "ufs"
    data_permanent = "data: after 64 KB, asynchronous; metadata: synchronous"
    sync_metadata = True
    ASYNC_THRESHOLD = 64 * 1024
    #: FFS orders crash-critical metadata (inodes, directories, indirect
    #: blocks) with synchronous writes; free-map updates may be delayed.
    SYNC_CLASSES = frozenset({"inode", "dir", "indirect", "super"})

    def __init__(self) -> None:
        self._streams: dict[int, _FileStream] = {}

    def on_data_write(self, fs, ino: int, page, offset: int, length: int) -> None:
        stream = self._streams.setdefault(ino, _FileStream())
        sequential = stream.last_end is None or offset == stream.last_end
        stream.last_end = offset + length
        stream.accumulated += length
        if stream.accumulated >= self.ASYNC_THRESHOLD or not sequential:
            _emit(
                fs, "async-flush",
                ino=ino,
                reason="threshold" if sequential else "non-sequential",
            )
            fs.flush_file(ino, sync=False)
            stream.accumulated = 0

    def on_metadata_pages(self, fs, pages) -> None:
        for page in pages:
            fs.flush_meta_page(page, sync=page.meta_class in self.SYNC_CLASSES)

    def on_close(self, fs, ino: int) -> None:
        self._streams.pop(ino, None)

    def periodic(self, fs) -> None:
        _emit(fs, "periodic", policy=self.name)
        fs.flush_data(sync=False)


class DelayedPolicy(WritePolicy):
    """The enhanced "no-order" UFS: *all* data and metadata delayed until
    the next update run — fastest disk-based option, but "risks losing 30
    seconds of both data and metadata"."""

    name = "ufs_delayed"
    data_permanent = "after 0-30 seconds, asynchronous"

    def periodic(self, fs) -> None:
        _emit(fs, "periodic", policy=self.name)
        fs.flush_data(sync=False)
        fs.flush_metadata(sync=False)


class WriteThroughOnClosePolicy(UFSDefaultPolicy):
    """UFS plus an fsync on every close: data permanent at close time."""

    name = "wt_close"
    data_permanent = "after close, synchronous"

    def on_close(self, fs, ino: int) -> None:
        fs.flush_file(ino, sync=True)
        fs.flush_metadata(sync=True)
        _drain_backend(fs)
        super().on_close(fs, ino)


class WriteThroughOnWritePolicy(UFSDefaultPolicy):
    """Mount option "sync": every write is synchronous.  The only
    disk-based configuration whose reliability matches Rio's."""

    name = "wt_write"
    data_permanent = "after write, synchronous"

    def on_data_write(self, fs, ino: int, page, offset: int, length: int) -> None:
        fs.flush_page_sync(page)

    def on_close(self, fs, ino: int) -> None:
        fs.flush_file(ino, sync=True)
        fs.flush_metadata(sync=True)
        _drain_backend(fs)
        super().on_close(fs, ino)


class AdvFSPolicy(WritePolicy):
    """Journalling: metadata updates appended sequentially to an on-disk
    log (cheap positioning), applied in place at checkpoints; data delayed
    like the no-order system."""

    name = "advfs"
    data_permanent = "after 0-30 seconds, asynchronous (metadata logged)"

    def on_metadata_pages(self, fs, pages) -> None:
        for page in pages:
            fs.journal_metadata(page)

    def on_fsync(self, fs, ino: int) -> None:
        _emit(fs, "fsync", ino=ino)
        fs.flush_file(ino, sync=True)
        fs.journal_commit()
        _drain_backend(fs)

    def periodic(self, fs) -> None:
        _emit(fs, "periodic", policy=self.name)
        fs.flush_data(sync=False)
        fs.journal_checkpoint()


WRITE_POLICIES = {
    policy.name: policy
    for policy in (
        RioPolicy,
        UFSDefaultPolicy,
        DelayedPolicy,
        WriteThroughOnClosePolicy,
        WriteThroughOnWritePolicy,
        AdvFSPolicy,
    )
}


def make_policy(name: str) -> WritePolicy:
    """Instantiate a policy by its Table 2 name."""
    if name not in WRITE_POLICIES:
        raise KeyError(f"unknown write policy {name!r}; know {sorted(WRITE_POLICIES)}")
    return WRITE_POLICIES[name]()
