"""A pure (read-only) file system consistency validator.

``fsck`` repairs; this module only judges.  It exists so tests can state
the crash-consistency invariant directly: *after any crash and the
configured recovery chain (journal replay, fsck, warm reboot), the
on-disk file system contains no inconsistencies.*  Keeping the validator
separate from fsck means a bug in fsck's repair logic cannot silently
vouch for itself.

Checked invariants:

* the superblock parses and matches the backup copy;
* every allocated inode has a sane type, size and block pointers;
* no data block is claimed twice;
* every directory entry points to an allocated inode;
* every directory has correct ``.`` and ``..``;
* link counts equal the number of references found by walking the tree;
* every allocated inode is reachable from the root;
* the bitmap marks exactly the metadata blocks + claimed blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fs.ondisk import (
    CorruptStructure,
    DIRENT_SIZE,
    DirEntry,
    INODES_PER_BLOCK,
    INODE_SIZE,
    Inode,
    Superblock,
)
from repro.fs.types import (
    BLOCK_SIZE,
    FileType,
    MAX_FILE_SIZE,
    PTRS_PER_INDIRECT,
    ROOT_INO,
    SECTORS_PER_BLOCK,
)


@dataclass
class ValidationReport:
    problems: list = field(default_factory=list)

    def note(self, message: str) -> None:
        self.problems.append(message)

    @property
    def consistent(self) -> bool:
        return not self.problems


def _read_block(disk, block_no: int) -> bytes:
    return disk.peek(block_no * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK)


def validate(disk) -> ValidationReport:
    """Validate the (unmounted) file system on ``disk``."""
    report = ValidationReport()

    # -- superblock ------------------------------------------------------
    try:
        sb = Superblock.from_bytes(_read_block(disk, 0))
    except CorruptStructure as exc:
        report.note(f"superblock: {exc}")
        return report
    try:
        backup = Superblock.from_bytes(_read_block(disk, sb.total_blocks - 1))
        if backup.total_blocks != sb.total_blocks:
            report.note("backup superblock disagrees with primary")
    except CorruptStructure:
        report.note("backup superblock unreadable")

    def read_inode(ino: int) -> Inode | None:
        block = sb.inode_start + ino // INODES_PER_BLOCK
        offset = (ino % INODES_PER_BLOCK) * INODE_SIZE
        raw = _read_block(disk, block)[offset : offset + INODE_SIZE]
        if raw == b"\x00" * INODE_SIZE:
            return Inode(ino=ino)
        try:
            return Inode.from_bytes(ino, raw, strict=True)
        except CorruptStructure:
            return None

    def valid_block(block_no: int) -> bool:
        return sb.data_start <= block_no < sb.total_blocks

    # -- inode scan ----------------------------------------------------------
    inodes: dict[int, Inode] = {}
    claimed: dict[int, int] = {}
    for ino in range(1, sb.num_inodes):
        inode = read_inode(ino)
        if inode is None:
            report.note(f"inode {ino}: unreadable")
            continue
        if not inode.is_allocated:
            continue
        inodes[ino] = inode
        if inode.size > MAX_FILE_SIZE:
            report.note(f"inode {ino}: impossible size {inode.size}")
        blocks = [b for b in inode.direct if b]
        if inode.indirect:
            if not valid_block(inode.indirect):
                report.note(f"inode {ino}: bad indirect pointer {inode.indirect}")
            else:
                blocks.append(inode.indirect)
                raw = _read_block(disk, inode.indirect)
                for i in range(PTRS_PER_INDIRECT):
                    block = int.from_bytes(raw[i * 4 : (i + 1) * 4], "little")
                    if block:
                        blocks.append(block)
        for block in blocks:
            if not valid_block(block):
                report.note(f"inode {ino}: bad block pointer {block}")
            elif block in claimed:
                report.note(
                    f"block {block} claimed by both inode {claimed[block]} and {ino}"
                )
            else:
                claimed[block] = ino

    # -- directory walk ----------------------------------------------------------
    if ROOT_INO not in inodes or inodes[ROOT_INO].ftype != FileType.DIRECTORY:
        report.note("root directory missing")
        return report

    link_counts: dict[int, int] = {}
    reachable: set[int] = set()
    stack = [(ROOT_INO, ROOT_INO)]  # (dir, parent)
    visited_dirs: set[int] = set()
    while stack:
        dir_ino, parent_ino = stack.pop()
        if dir_ino in visited_dirs:
            continue
        visited_dirs.add(dir_ino)
        reachable.add(dir_ino)
        dinode = inodes[dir_ino]
        seen_dot = seen_dotdot = False
        names: set[str] = set()
        for block in [b for b in dinode.direct if b and valid_block(b)]:
            data = _read_block(disk, block)
            for off in range(0, BLOCK_SIZE, DIRENT_SIZE):
                entry = DirEntry.from_bytes(data[off : off + DIRENT_SIZE])
                if entry is None:
                    if data[off : off + 4] != b"\x00\x00\x00\x00":
                        report.note(f"dir {dir_ino}: garbled entry at offset {off}")
                    continue
                if entry.name in names:
                    report.note(f"dir {dir_ino}: duplicate name {entry.name!r}")
                names.add(entry.name)
                target = inodes.get(entry.ino)
                if target is None:
                    report.note(
                        f"dir {dir_ino}: entry {entry.name!r} -> unallocated inode {entry.ino}"
                    )
                    continue
                if entry.name == ".":
                    seen_dot = True
                    if entry.ino != dir_ino:
                        report.note(f"dir {dir_ino}: '.' points to {entry.ino}")
                    link_counts[dir_ino] = link_counts.get(dir_ino, 0) + 1
                elif entry.name == "..":
                    seen_dotdot = True
                    if entry.ino != parent_ino:
                        report.note(
                            f"dir {dir_ino}: '..' points to {entry.ino}, parent is {parent_ino}"
                        )
                    link_counts[entry.ino] = link_counts.get(entry.ino, 0) + 1
                else:
                    link_counts[entry.ino] = link_counts.get(entry.ino, 0) + 1
                    if target.ftype == FileType.DIRECTORY:
                        stack.append((entry.ino, dir_ino))
                    else:
                        reachable.add(entry.ino)
        if not seen_dot:
            report.note(f"dir {dir_ino}: missing '.'")
        if not seen_dotdot:
            report.note(f"dir {dir_ino}: missing '..'")

    # -- reachability and link counts ----------------------------------------------
    for ino, inode in inodes.items():
        if ino not in reachable:
            report.note(f"inode {ino}: allocated but unreachable")
        counted = link_counts.get(ino, 0)
        if counted and inode.nlink != counted:
            report.note(f"inode {ino}: nlink {inode.nlink}, found {counted} references")

    # -- bitmap --------------------------------------------------------------------------
    expected_used = set(range(sb.data_start)) | set(claimed) | {sb.total_blocks - 1}
    bitmap = b"".join(
        _read_block(disk, sb.bitmap_start + i) for i in range(sb.bitmap_blocks)
    )
    for block_no in range(sb.total_blocks):
        marked = bool(bitmap[block_no // 8] & (1 << (block_no % 8)))
        if marked and block_no not in expected_used:
            report.note(f"bitmap: block {block_no} marked used but unclaimed")
        elif not marked and block_no in expected_used:
            report.note(f"bitmap: block {block_no} in use but marked free")
    return report
