"""fsck: offline consistency check and repair.

Runs against the raw disk between reboot and mount — after the warm
reboot has restored metadata from the registry ("so that the file system
is intact before being checked for consistency by fsck") and, for AdvFS,
after journal replay.

Phases, in the classic order:

1. superblock validation (with fallback to the backup copy in the last
   block);
2. inode scan: clear mangled inodes, clear block pointers that point
   outside the data area, resolve duplicate block claims (first claimant
   wins), clamp impossible sizes;
3. directory walk from the root: drop directory entries that reference
   free or mangled inodes, recompute link counts;
4. orphan inodes (allocated but unreachable) are reconnected into
   ``/lost+found`` (or freed if that fails);
5. link-count repair;
6. block bitmap rebuild from the surviving claims.

Everything operates on raw sectors (``peek``/``poke``) — the machine this
runs on is healthy, but the disk state is whatever the crash left.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fs.ondisk import (
    CorruptStructure,
    DIRENT_SIZE,
    DirEntry,
    INODES_PER_BLOCK,
    INODE_SIZE,
    Inode,
    Superblock,
)
from repro.fs.types import (
    BLOCK_SIZE,
    FileType,
    MAX_FILE_SIZE,
    N_DIRECT,
    PTRS_PER_INDIRECT,
    ROOT_INO,
    SECTORS_PER_BLOCK,
)

LOST_FOUND_INO = 3


@dataclass
class FsckReport:
    """What fsck found and fixed."""

    was_clean: bool = False
    unrecoverable: bool = False
    fixes: list[str] = field(default_factory=list)
    inodes_checked: int = 0
    directories_walked: int = 0
    orphans_reconnected: int = 0
    orphans_freed: int = 0

    def fix(self, message: str) -> None:
        self.fixes.append(message)

    @property
    def fix_count(self) -> int:
        return len(self.fixes)


class _RawFs:
    """Raw byte-level access to an unmounted file system."""

    def __init__(self, disk) -> None:
        self.disk = disk
        self.sb: Superblock | None = None

    def read_block(self, block_no: int) -> bytes:
        return self.disk.peek(block_no * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK)

    def write_block(self, block_no: int, data: bytes) -> None:
        assert len(data) == BLOCK_SIZE
        self.disk.poke(block_no * SECTORS_PER_BLOCK, data)

    def read_inode(self, ino: int) -> Inode:
        block = self.sb.inode_start + ino // INODES_PER_BLOCK
        offset = (ino % INODES_PER_BLOCK) * INODE_SIZE
        raw = self.read_block(block)[offset : offset + INODE_SIZE]
        try:
            return Inode.from_bytes(ino, raw, strict=True)
        except CorruptStructure:
            return Inode(ino=ino)  # treated as free; caller records the fix

    def inode_is_mangled(self, ino: int) -> bool:
        block = self.sb.inode_start + ino // INODES_PER_BLOCK
        offset = (ino % INODES_PER_BLOCK) * INODE_SIZE
        raw = self.read_block(block)[offset : offset + INODE_SIZE]
        if raw == b"\x00" * INODE_SIZE:
            return False  # a never-used slot is a valid free inode
        try:
            Inode.from_bytes(ino, raw, strict=True)
            return False
        except CorruptStructure:
            return True

    def write_inode(self, inode: Inode) -> None:
        block = self.sb.inode_start + inode.ino // INODES_PER_BLOCK
        offset = (inode.ino % INODES_PER_BLOCK) * INODE_SIZE
        data = bytearray(self.read_block(block))
        data[offset : offset + INODE_SIZE] = inode.to_bytes()
        self.write_block(block, bytes(data))


def _valid_data_block(sb: Superblock, block_no: int) -> bool:
    return sb.data_start <= block_no < sb.total_blocks


def fsck(disk) -> FsckReport:
    """Check and repair the file system on ``disk``."""
    report = FsckReport()
    raw = _RawFs(disk)

    # -- phase 1: superblock -------------------------------------------------
    sb = None
    try:
        sb = Superblock.from_bytes(raw.read_block(0))
    except CorruptStructure:
        report.fix("superblock: primary copy corrupt")
    if sb is None:
        # Try the backup in the last block.  We do not know total_blocks
        # yet, so derive it from the disk geometry.
        last_block = disk.num_sectors // SECTORS_PER_BLOCK - 1
        try:
            sb = Superblock.from_bytes(raw.read_block(last_block))
            report.fix("superblock: restored from backup copy")
            raw.sb = sb
            raw.write_block(0, sb.to_bytes())
        except CorruptStructure:
            report.unrecoverable = True
            report.fix("superblock: backup copy also corrupt; cannot proceed")
            return report
    raw.sb = sb
    report.was_clean = sb.clean

    # -- phase 2: inode scan ----------------------------------------------------
    inodes: dict[int, Inode] = {}
    claimed: dict[int, int] = {}  # block -> first claiming ino
    for ino in range(1, sb.num_inodes):
        report.inodes_checked += 1
        if raw.inode_is_mangled(ino):
            report.fix(f"inode {ino}: mangled; cleared")
            raw.write_inode(Inode(ino=ino))
            continue
        inode = raw.read_inode(ino)
        if not inode.is_allocated:
            continue
        changed = False
        if inode.size > MAX_FILE_SIZE:
            # Reset the size AND drop the block mappings: leaving blocks
            # mapped beyond the (now zero) end-of-file would be exactly
            # the size/block-count mismatch the independent verifier
            # flags on a "repaired" image.
            inode.size = 0
            inode.direct = [0] * N_DIRECT
            inode.indirect = 0
            report.fix(f"inode {ino}: impossible size; reset and blocks freed")
            changed = True
        if inode.indirect and not _valid_data_block(sb, inode.indirect):
            report.fix(f"inode {ino}: bad indirect pointer {inode.indirect}; cleared")
            inode.indirect = 0
            changed = True
        for slot in range(N_DIRECT):
            block = inode.direct[slot]
            if block == 0:
                continue
            if not _valid_data_block(sb, block):
                report.fix(f"inode {ino}: bad block pointer {block}; cleared")
                inode.direct[slot] = 0
                changed = True
            elif block in claimed:
                report.fix(
                    f"inode {ino}: block {block} already claimed by inode "
                    f"{claimed[block]}; cleared"
                )
                inode.direct[slot] = 0
                changed = True
            else:
                claimed[block] = ino
        if inode.indirect:
            if inode.indirect in claimed:
                report.fix(f"inode {ino}: indirect block doubly claimed; cleared")
                inode.indirect = 0
                changed = True
            else:
                claimed[inode.indirect] = ino
                ind = bytearray(raw.read_block(inode.indirect))
                ind_changed = False
                for i in range(PTRS_PER_INDIRECT):
                    block = int.from_bytes(ind[i * 4 : (i + 1) * 4], "little")
                    if block == 0:
                        continue
                    if not _valid_data_block(sb, block) or block in claimed:
                        report.fix(
                            f"inode {ino}: bad/duplicate indirect entry {block}; cleared"
                        )
                        ind[i * 4 : (i + 1) * 4] = b"\x00\x00\x00\x00"
                        ind_changed = True
                    else:
                        claimed[block] = ino
                if ind_changed:
                    raw.write_block(inode.indirect, bytes(ind))
        if changed:
            raw.write_inode(inode)
        inodes[ino] = inode

    # -- phases 3+4: directory walk and orphan reconnection ------------------
    # Real fsck iterates: reconnecting an orphaned directory makes a new
    # subtree reachable, which must itself be walked (and may surface more
    # problems), so walk/reconnect repeats until a pass finds no orphans.
    if ROOT_INO not in inodes or inodes[ROOT_INO].ftype != FileType.DIRECTORY:
        report.fix("root directory missing; recreating an empty root")
        root = Inode(ino=ROOT_INO, ftype=FileType.DIRECTORY, nlink=2, size=0)
        raw.write_inode(root)
        inodes[ROOT_INO] = root

    link_counts: dict[int, int] = {}
    for _pass in range(4):
        link_counts, reachable = _walk_tree(raw, inodes, report)
        orphans = [
            ino for ino in inodes if inodes[ino].is_allocated and ino not in reachable
        ]
        if not orphans:
            break
        for ino in orphans:
            if _reconnect(raw, inodes, ino, report):
                report.orphans_reconnected += 1
            else:
                inode = inodes.pop(ino)
                for block in _claimed_blocks(raw, inode):
                    claimed.pop(block, None)
                raw.write_inode(Inode(ino=ino))
                report.orphans_freed += 1
                report.fix(f"inode {ino}: orphan freed")

    # -- phase 5: link counts ----------------------------------------------------------
    for ino, inode in inodes.items():
        if not inode.is_allocated:
            continue
        counted = link_counts.get(ino, 0)
        if inode.nlink != counted and counted > 0:
            report.fix(f"inode {ino}: link count {inode.nlink} -> {counted}")
            inode.nlink = counted
            raw.write_inode(inode)

    # -- phase 6: bitmap rebuild -----------------------------------------------------------
    bitmap = bytearray(sb.bitmap_blocks * BLOCK_SIZE)
    for block_no in range(sb.data_start):
        bitmap[block_no // 8] |= 1 << (block_no % 8)
    backup_block = sb.total_blocks - 1
    bitmap[backup_block // 8] |= 1 << (backup_block % 8)
    for block_no in claimed:
        bitmap[block_no // 8] |= 1 << (block_no % 8)
    current = b"".join(
        raw.read_block(sb.bitmap_start + i) for i in range(sb.bitmap_blocks)
    )
    if bytes(bitmap) != current:
        report.fix("block bitmap rebuilt")
        for i in range(sb.bitmap_blocks):
            raw.write_block(
                sb.bitmap_start + i, bytes(bitmap[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE])
            )

    # -- mark clean ------------------------------------------------------------------------
    sb.clean = True
    raw.write_block(0, sb.to_bytes())
    raw.write_block(sb.total_blocks - 1, sb.to_bytes())
    return report


def _dir_block_list(raw: _RawFs, dinode: Inode) -> list[int]:
    blocks = [b for b in dinode.direct if b and _valid_data_block(raw.sb, b)]
    if dinode.indirect and _valid_data_block(raw.sb, dinode.indirect):
        ind = raw.read_block(dinode.indirect)
        for i in range(PTRS_PER_INDIRECT):
            block = int.from_bytes(ind[i * 4 : (i + 1) * 4], "little")
            if block and _valid_data_block(raw.sb, block):
                blocks.append(block)
    return blocks


def _claimed_blocks(raw: _RawFs, inode: Inode) -> list[int]:
    blocks = [b for b in inode.direct if b]
    if inode.indirect:
        blocks.append(inode.indirect)
        ind = raw.read_block(inode.indirect)
        for i in range(PTRS_PER_INDIRECT):
            block = int.from_bytes(ind[i * 4 : (i + 1) * 4], "little")
            if block:
                blocks.append(block)
    return blocks


def _walk_tree(raw: _RawFs, inodes: dict[int, Inode], report: FsckReport):
    """One repair pass over the reachable tree; returns (link_counts,
    reachable).  Repairs garbled/dangling entries and missing dot entries
    in place as it goes."""
    link_counts: dict[int, int] = {}
    reachable: set[int] = set()
    queue = [(ROOT_INO, ROOT_INO)]  # (dir, parent)
    while queue:
        dir_ino, parent_ino = queue.pop()
        if dir_ino in reachable:
            continue
        reachable.add(dir_ino)
        report.directories_walked += 1
        dinode = inodes[dir_ino]
        blocks = _dir_block_list(raw, dinode)
        seen_dot = seen_dotdot = False
        for block_no in blocks:
            data = bytearray(raw.read_block(block_no))
            block_changed = False
            for off in range(0, BLOCK_SIZE, DIRENT_SIZE):
                entry = DirEntry.from_bytes(bytes(data[off : off + DIRENT_SIZE]))
                if entry is None:
                    if data[off : off + 4] != b"\x00\x00\x00\x00":
                        data[off : off + DIRENT_SIZE] = b"\x00" * DIRENT_SIZE
                        block_changed = True
                        report.fix(f"dir {dir_ino}: garbled entry cleared")
                    continue
                target = inodes.get(entry.ino)
                if target is None or not target.is_allocated:
                    report.fix(
                        f"dir {dir_ino}: entry {entry.name!r} -> free inode "
                        f"{entry.ino}; removed"
                    )
                    data[off : off + DIRENT_SIZE] = b"\x00" * DIRENT_SIZE
                    block_changed = True
                    continue
                if entry.name == ".":
                    seen_dot = True
                    if entry.ino != dir_ino:
                        report.fix(f"dir {dir_ino}: bad '.'; fixed")
                        data[off : off + DIRENT_SIZE] = DirEntry(dir_ino, ".").to_bytes()
                        block_changed = True
                    link_counts[dir_ino] = link_counts.get(dir_ino, 0) + 1
                    continue
                if entry.name == "..":
                    seen_dotdot = True
                    if entry.ino != parent_ino:
                        # Stale parent pointer — e.g. the directory was
                        # reconnected into lost+found, or a cross-directory
                        # rename was interrupted.
                        report.fix(
                            f"dir {dir_ino}: '..' pointed to {entry.ino}; "
                            f"now {parent_ino}"
                        )
                        data[off : off + DIRENT_SIZE] = DirEntry(
                            parent_ino, ".."
                        ).to_bytes()
                        block_changed = True
                    link_counts[parent_ino] = link_counts.get(parent_ino, 0) + 1
                    continue
                link_counts[entry.ino] = link_counts.get(entry.ino, 0) + 1
                if target.ftype == FileType.DIRECTORY:
                    queue.append((entry.ino, dir_ino))
                else:
                    reachable.add(entry.ino)
            if block_changed:
                raw.write_block(block_no, bytes(data))
        # Repair missing "." / ".." (e.g. a directory whose first block's
        # initialisation was lost in the crash but whose inode survived).
        for missing, name, target_ino in (
            (not seen_dot, ".", dir_ino),
            (not seen_dotdot, "..", parent_ino),
        ):
            if not missing:
                continue
            if _insert_dirent(raw, blocks, DirEntry(target_ino, name)):
                report.fix(f"dir {dir_ino}: missing {name!r}; recreated")
                link_counts[target_ino] = link_counts.get(target_ino, 0) + 1
            else:
                report.fix(f"dir {dir_ino}: missing {name!r}; no room to recreate")
    return link_counts, reachable


def _insert_dirent(raw: _RawFs, blocks: list[int], entry: DirEntry) -> bool:
    """Write a directory record into the first free slot; False if full."""
    for block_no in blocks:
        data = bytearray(raw.read_block(block_no))
        for off in range(0, BLOCK_SIZE, DIRENT_SIZE):
            if data[off : off + 4] == b"\x00\x00\x00\x00":
                data[off : off + DIRENT_SIZE] = entry.to_bytes()
                raw.write_block(block_no, bytes(data))
                return True
    return False


def _reconnect(raw: _RawFs, inodes: dict[int, Inode], ino: int, report: FsckReport) -> bool:
    """Link an orphan into /lost+found; returns False if impossible."""
    lost_found = inodes.get(LOST_FOUND_INO)
    if lost_found is None or lost_found.ftype != FileType.DIRECTORY:
        return False
    name = f"#{ino}"
    record = DirEntry(ino, name).to_bytes()
    for block_no in _dir_block_list(raw, lost_found):
        data = bytearray(raw.read_block(block_no))
        for off in range(0, BLOCK_SIZE, DIRENT_SIZE):
            if data[off : off + 4] == b"\x00\x00\x00\x00":
                data[off : off + DIRENT_SIZE] = record
                raw.write_block(block_no, bytes(data))
                report.fix(f"inode {ino}: orphan reconnected as lost+found/{name}")
                return True
    return False
