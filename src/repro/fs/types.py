"""Shared file system constants and small value types."""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: File system block size — one block per 8 KB file-cache page, as in the
#: paper ("40 bytes of information are needed for each 8 KB file cache page").
BLOCK_SIZE = 8192

#: Disk sectors per file system block (512-byte sectors).
SECTORS_PER_BLOCK = BLOCK_SIZE // 512

#: Inode number of the root directory (inode 0 is reserved/invalid,
#: inode 1 is the lost+found anchor by convention).
ROOT_INO = 2

#: Maximum file name length (fixed-size directory records).
MAX_NAME = 27

#: Direct block pointers per inode; one single-indirect block extends this.
N_DIRECT = 12

#: Block pointers held by one indirect block (u32 entries).
PTRS_PER_INDIRECT = BLOCK_SIZE // 4

#: Largest representable file.
MAX_FILE_BLOCKS = N_DIRECT + PTRS_PER_INDIRECT
MAX_FILE_SIZE = MAX_FILE_BLOCKS * BLOCK_SIZE


class FileType(enum.IntEnum):
    FREE = 0
    REGULAR = 1
    DIRECTORY = 2
    SYMLINK = 3


class Whence(enum.IntEnum):
    SET = 0
    CUR = 1
    END = 2


@dataclass(frozen=True)
class FileId:
    """Identifies a file the way the registry does: device + inode number."""

    dev: int
    ino: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.dev}:{self.ino}"
