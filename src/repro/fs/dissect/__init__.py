"""An independent on-disk-format verifier: static analysis of disk images.

This package is a dissect-style read-only parser for RIOF disk images —
the second, independent opinion on every corruption count the campaigns
report.  ``repro.fs.ufs`` is otherwise judged only by ``repro.fs.fsck``,
and the two share their serializers (``repro.fs.ondisk``): a bug in the
shared format code is invisible to both.  This package therefore shares
**zero code** with the kernel-side file system stack:

* its record layouts are declared from scratch in a cstruct-style DSL
  (:mod:`repro.fs.dissect.cstructs`, :mod:`repro.fs.dissect.layout`);
* its Fletcher-32 is its own implementation;
* it imports none of ``repro.fs.{ufs,cache,writeback,fsck,ondisk}`` —
  a property enforced mechanically by a module-graph test.

Public surface:

* :func:`dissect_image` — bytes in, typed :class:`DissectReport` out;
  never raises on image content;
* :func:`compare_verdicts` / :class:`DivergenceReport` — the
  fsck-vs-dissect second-opinion protocol;
* :func:`snapshot` / :func:`install` / :func:`dump_image` /
  :func:`load_image` — disk images as digest-verified artifacts.
"""

from repro.fs.dissect.divergence import (
    DivergenceReport,
    compare_verdicts,
    fsck_acknowledged,
)
from repro.fs.dissect.findings import (
    DissectReport,
    Finding,
    FindingKind,
    MAX_FINDINGS,
)
from repro.fs.dissect.image import (
    IMAGE_MAGIC,
    ImageFormatError,
    dump_image,
    image_sha256,
    install,
    load_image,
    snapshot,
)
from repro.fs.dissect.parser import dissect_image

__all__ = [
    "DivergenceReport",
    "DissectReport",
    "Finding",
    "FindingKind",
    "IMAGE_MAGIC",
    "ImageFormatError",
    "MAX_FINDINGS",
    "compare_verdicts",
    "dissect_image",
    "fsck_acknowledged",
    "dump_image",
    "image_sha256",
    "install",
    "load_image",
    "snapshot",
]
