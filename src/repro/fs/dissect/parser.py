"""The image walker: superblock -> bitmap -> inodes -> directory tree.

:func:`dissect_image` is the verifier's whole public surface: bytes in,
:class:`~repro.fs.dissect.findings.DissectReport` out.  It never raises
on image content — a corrupt image produces typed findings, an
internally-inconsistent one produces a bounded number of them, and a
parser bug degrades to a :data:`FindingKind.PARSER_ERROR` finding rather
than an exception escaping into the campaign that called it.

The traversal is bounded and cycle-safe: directories are visited at most
once (a revisit is itself a finding), the inode scan is bounded by the
geometry the checksummed superblock declares, and the findings list is
capped (:data:`~repro.fs.dissect.findings.MAX_FINDINGS`).
"""

from __future__ import annotations

import hashlib

from repro.fs.dissect import layout
from repro.fs.dissect.cstructs import TruncatedRecord
from repro.fs.dissect.findings import DissectReport, Finding, FindingKind


def dissect_image(data: bytes) -> DissectReport:
    """Statically analyze one raw disk image; never raises on content."""
    report = DissectReport(image_sha256=hashlib.sha256(data).hexdigest())
    try:
        _scan(data, report)
    except Exception as exc:  # a verifier bug must not kill the campaign
        report.add(
            Finding(
                FindingKind.PARSER_ERROR,
                "image",
                f"internal parser error: {type(exc).__name__}: {exc}",
            )
        )
    return report


# -- scan phases -------------------------------------------------------------


def _scan(data: bytes, report: DissectReport) -> None:
    report.blocks_total = len(data) // layout.BLOCK_SIZE
    if len(data) < 2 * layout.BLOCK_SIZE or len(data) % layout.BLOCK_SIZE:
        report.add(
            Finding(
                FindingKind.TRUNCATED_IMAGE,
                "image",
                f"{len(data)} bytes is not a whole image "
                f"(expected a multiple of {layout.BLOCK_SIZE}, at least two blocks)",
            )
        )
        if report.blocks_total < 2:
            return

    def read_block(block_no: int) -> bytes:
        return data[block_no * layout.BLOCK_SIZE : (block_no + 1) * layout.BLOCK_SIZE]

    # -- phase 1: superblock (primary, falling back to the backup copy) --
    sb = _parse_superblock(read_block(0), "superblock", report)
    if sb is None:
        sb = _parse_superblock(
            read_block(report.blocks_total - 1), "backup superblock", report
        )
    if sb is None:
        return
    if sb.total_blocks != report.blocks_total:
        report.add(
            Finding(
                FindingKind.BAD_GEOMETRY,
                "superblock",
                f"declares {sb.total_blocks} blocks, image holds {report.blocks_total}",
            )
        )
        return
    report.walk_completed = True

    # -- phase 2: inode region scan --------------------------------------
    num_inodes = sb.inode_blocks * layout.INODES_PER_BLOCK
    inodes: dict = {}
    claims: dict = {}  # block -> (claiming ino, file block index or None)
    for ino in range(1, num_inodes):
        block_no = sb.inode_start + ino // layout.INODES_PER_BLOCK
        offset = (ino % layout.INODES_PER_BLOCK) * layout.INODE_SIZE
        raw = read_block(block_no)[offset : offset + layout.INODE_SIZE]
        report.inodes_scanned += 1
        if raw == b"\x00" * layout.INODE_SIZE:
            continue  # never-used slot
        try:
            record = layout.INODE.unpack(raw)
        except TruncatedRecord:  # cannot happen for a whole slot; be safe
            record = None
        if (
            record is None
            or record.magic != layout.INODE_MAGIC
            or record.ftype not in layout.FTYPE_NAMES
        ):
            report.add(
                Finding(
                    FindingKind.MANGLED_INODE,
                    f"inode {ino}",
                    "slot is neither free nor a valid inode record",
                    block=block_no,
                )
            )
            continue
        if record.ftype == layout.FTYPE_FREE:
            continue
        report.inodes_allocated += 1
        inodes[ino] = record
        _check_inode_blocks(sb, ino, record, claims, read_block, report)

    # -- phases 3+4: directory walk from the root ------------------------
    reachable = _walk_directories(sb, inodes, read_block, report)
    for ino in sorted(inodes):
        if ino not in reachable:
            report.add(
                Finding(
                    FindingKind.UNREACHABLE_INODE,
                    f"inode {ino}",
                    f"allocated {layout.FTYPE_NAMES[inodes[ino].ftype]} inode "
                    "unreachable from the root directory",
                )
            )

    # -- phase 5: allocation bitmap cross-check --------------------------
    _check_bitmap(sb, claims, read_block, report)


def _parse_superblock(block: bytes, where: str, report: DissectReport):
    """Parse one superblock copy; findings instead of exceptions.

    Returns the parsed record on success, None when this copy is
    unusable (the caller may try the other copy).
    """
    try:
        sb = layout.SUPERBLOCK.unpack(block)
    except TruncatedRecord:
        report.add(Finding(FindingKind.TRUNCATED_IMAGE, where, "header truncated"))
        return None
    if sb.magic != layout.SUPERBLOCK_MAGIC:
        report.add(
            Finding(FindingKind.BAD_MAGIC, where, f"magic {sb.magic:#010x}", block=0)
        )
        return None
    if sb.version != layout.ONDISK_VERSION:
        report.add(
            Finding(
                FindingKind.BAD_VERSION,
                where,
                f"layout version {sb.version}, verifier understands {layout.ONDISK_VERSION}",
            )
        )
        return None
    if (
        sb.header_size != layout.SUPERBLOCK_HEADER_SIZE
        or layout.superblock_checksum(block) != sb.checksum
    ):
        # Magic and version intact but the sealed header does not verify:
        # the signature of a torn (half-old, half-new) superblock page.
        report.add(
            Finding(
                FindingKind.TORN_PAGE,
                where,
                "header checksum mismatch — torn or half-stale superblock write",
                block=0,
            )
        )
        return None
    problem = _geometry_problem(sb)
    if problem is not None:
        report.add(Finding(FindingKind.BAD_GEOMETRY, where, problem))
        return None
    expected = _expected_summaries(sb)
    if sb.summary_count != len(expected):
        report.add(
            Finding(
                FindingKind.BAD_GEOMETRY,
                where,
                f"summary count {sb.summary_count}, geometry implies {len(expected)}",
            )
        )
        return None
    for index, (kind, start, blocks) in enumerate(expected):
        record = layout.REGION_SUMMARY.unpack(
            block[
                layout.REGION_SUMMARY_OFFSET
                + index * layout.REGION_SUMMARY_SIZE : layout.REGION_SUMMARY_OFFSET
                + (index + 1) * layout.REGION_SUMMARY_SIZE
            ]
        )
        if (
            record.magic != layout.REGION_SUMMARY_MAGIC
            or record.kind != kind
            or record.start != start
            or record.blocks != blocks
        ):
            report.add(
                Finding(
                    FindingKind.BAD_GEOMETRY,
                    where,
                    f"region summary {index} ({layout.REGION_NAMES.get(kind, kind)}) "
                    "disagrees with the geometry words",
                )
            )
            return None
    return sb


def _geometry_problem(sb) -> str | None:
    """The first geometry violation, or None when the regions are sane."""
    if not (0 < sb.data_start <= sb.total_blocks):
        return f"data region starts at {sb.data_start} of {sb.total_blocks} blocks"
    if sb.bitmap_start < 1 or sb.bitmap_blocks < 1:
        return "bitmap region missing"
    if sb.bitmap_blocks * layout.BLOCK_SIZE * 8 < sb.total_blocks:
        return "bitmap too small to cover every block"
    if sb.inode_start < sb.bitmap_start + sb.bitmap_blocks:
        return "inode region overlaps bitmap"
    if sb.inode_blocks < 1:
        return "inode region empty"
    metadata_end = sb.inode_start + sb.inode_blocks
    if sb.journal_blocks:
        if sb.journal_start < metadata_end:
            return "journal region overlaps inodes"
        metadata_end = sb.journal_start + sb.journal_blocks
    if sb.data_start < metadata_end:
        return "data region overlaps metadata"
    if not (0 < sb.root_ino < sb.inode_blocks * layout.INODES_PER_BLOCK):
        return f"root inode {sb.root_ino} out of range"
    return None


def _expected_summaries(sb) -> list:
    """(kind, start, blocks) records this geometry implies."""
    regions = [
        (layout.REGION_SUPER, 0, 1),
        (layout.REGION_BITMAP, sb.bitmap_start, sb.bitmap_blocks),
        (layout.REGION_INODE, sb.inode_start, sb.inode_blocks),
    ]
    if sb.journal_blocks:
        regions.append((layout.REGION_JOURNAL, sb.journal_start, sb.journal_blocks))
    regions.append(
        (layout.REGION_DATA, sb.data_start, sb.total_blocks - 1 - sb.data_start)
    )
    regions.append((layout.REGION_BACKUP, sb.total_blocks - 1, 1))
    return regions


def _valid_data_block(sb, block_no: int) -> bool:
    return sb.data_start <= block_no < sb.total_blocks


def _check_inode_blocks(sb, ino, record, claims, read_block, report) -> None:
    """Validate one inode's pointers, claims, and size-vs-blocks."""
    mapped_indices = []

    def claim(block_no: int, file_index: int | None, what: str) -> None:
        if not _valid_data_block(sb, block_no):
            report.add(
                Finding(
                    FindingKind.BAD_POINTER,
                    f"inode {ino}",
                    f"{what} points at block {block_no}, outside the data region",
                    block=block_no,
                )
            )
            return
        if block_no in claims:
            other_ino, _ = claims[block_no]
            report.add(
                Finding(
                    FindingKind.DUPLICATE_CLAIM,
                    f"inode {ino}",
                    f"{what} claims block {block_no}, already claimed by inode {other_ino}",
                    block=block_no,
                )
            )
            return
        claims[block_no] = (ino, file_index)
        if file_index is not None:
            mapped_indices.append(file_index)

    for slot, block_no in enumerate(record.direct):
        if block_no:
            claim(block_no, slot, f"direct[{slot}]")
    if record.indirect:
        before = record.indirect in claims or not _valid_data_block(sb, record.indirect)
        claim(record.indirect, None, "indirect pointer")
        if not before:
            ind = read_block(record.indirect)
            for i in range(layout.PTRS_PER_INDIRECT):
                entry = int.from_bytes(ind[i * 4 : (i + 1) * 4], "little")
                if entry:
                    claim(entry, layout.N_DIRECT + i, f"indirect[{i}]")

    if record.size > layout.MAX_FILE_BLOCKS * layout.BLOCK_SIZE:
        report.add(
            Finding(
                FindingKind.SIZE_MISMATCH,
                f"inode {ino}",
                f"size {record.size} exceeds the maximum representable file",
            )
        )
        return
    needed = -(-record.size // layout.BLOCK_SIZE)  # ceil
    beyond = [i for i in mapped_indices if i >= needed]
    if beyond:
        report.add(
            Finding(
                FindingKind.SIZE_MISMATCH,
                f"inode {ino}",
                f"size {record.size} needs {needed} blocks but file block "
                f"{min(beyond)} is mapped beyond end-of-file",
            )
        )


def _walk_directories(sb, inodes, read_block, report) -> set:
    """Bounded, cycle-safe BFS over the directory tree; returns the set
    of inodes reachable from the root."""
    reachable: set = set()
    visited: set = set()
    root = inodes.get(sb.root_ino)
    if root is None or root.ftype != layout.FTYPE_DIRECTORY:
        report.add(
            Finding(
                FindingKind.DANGLING_DIRENT,
                "root",
                f"root inode {sb.root_ino} is not an allocated directory",
            )
        )
        return reachable
    queue = [(sb.root_ino, sb.root_ino)]
    reachable.add(sb.root_ino)
    while queue:
        dir_ino, parent_ino = queue.pop(0)
        if dir_ino in visited:
            report.add(
                Finding(
                    FindingKind.DIRECTORY_CYCLE,
                    f"dir {dir_ino}",
                    "directory reachable along two paths (cycle or illegal hard link)",
                )
            )
            continue
        visited.add(dir_ino)
        report.directories_walked += 1
        record = inodes[dir_ino]
        blocks = [b for b in record.direct if b and _valid_data_block(sb, b)]
        if record.indirect and _valid_data_block(sb, record.indirect):
            ind = read_block(record.indirect)
            for i in range(layout.PTRS_PER_INDIRECT):
                entry = int.from_bytes(ind[i * 4 : (i + 1) * 4], "little")
                if entry and _valid_data_block(sb, entry):
                    blocks.append(entry)
        seen_dot = seen_dotdot = False
        for block_no in blocks:
            block = read_block(block_no)
            for off in range(0, layout.BLOCK_SIZE, layout.DIRENT_SIZE):
                slot = block[off : off + layout.DIRENT_SIZE]
                entry = layout.DIRENT.unpack(slot)
                if entry.ino == 0:
                    continue  # empty slot (fsck zeroes only the ino word)
                name_raw = entry.name[: entry.name_len]
                if (
                    entry.name_len == 0
                    or entry.name_len > layout.MAX_NAME
                    or b"\x00" in name_raw
                    or not _decodable(name_raw)
                ):
                    report.add(
                        Finding(
                            FindingKind.GARBLED_DIRENT,
                            f"dir {dir_ino} block {block_no}",
                            f"slot at +{off} does not parse as a directory record",
                            block=block_no,
                        )
                    )
                    continue
                name = name_raw.decode()
                if name == ".":
                    seen_dot = True
                    if entry.ino != dir_ino:
                        report.add(
                            Finding(
                                FindingKind.BAD_DOT_ENTRY,
                                f"dir {dir_ino}",
                                f"'.' points at inode {entry.ino}",
                            )
                        )
                    continue
                if name == "..":
                    seen_dotdot = True
                    if entry.ino != parent_ino:
                        report.add(
                            Finding(
                                FindingKind.BAD_DOT_ENTRY,
                                f"dir {dir_ino}",
                                f"'..' points at inode {entry.ino}, parent is {parent_ino}",
                            )
                        )
                    continue
                target = inodes.get(entry.ino)
                if target is None:
                    report.add(
                        Finding(
                            FindingKind.DANGLING_DIRENT,
                            f"dir {dir_ino}",
                            f"entry {name!r} references free or mangled inode {entry.ino}",
                            block=block_no,
                        )
                    )
                    continue
                reachable.add(entry.ino)
                if target.ftype == layout.FTYPE_DIRECTORY:
                    queue.append((entry.ino, dir_ino))
        for missing, label in ((not seen_dot, "'.'"), (not seen_dotdot, "'..'")):
            if missing:
                report.add(
                    Finding(
                        FindingKind.BAD_DOT_ENTRY,
                        f"dir {dir_ino}",
                        f"{label} entry missing",
                    )
                )
    return reachable


def _decodable(raw: bytes) -> bool:
    try:
        raw.decode()
        return True
    except UnicodeDecodeError:
        return False


def _check_bitmap(sb, claims, read_block, report) -> None:
    """Cross-check the allocation bitmap against the claimed blocks."""
    bitmap = b"".join(
        read_block(sb.bitmap_start + i) for i in range(sb.bitmap_blocks)
    )
    expected = bytearray(sb.bitmap_blocks * layout.BLOCK_SIZE)
    for block_no in range(min(sb.data_start, sb.total_blocks)):
        expected[block_no // 8] |= 1 << (block_no % 8)
    backup = sb.total_blocks - 1
    expected[backup // 8] |= 1 << (backup % 8)
    for block_no in claims:
        expected[block_no // 8] |= 1 << (block_no % 8)
    leaked = lost = 0
    first_leaked = first_lost = None
    for block_no in range(sb.total_blocks):
        have = bitmap[block_no // 8] >> (block_no % 8) & 1
        want = expected[block_no // 8] >> (block_no % 8) & 1
        if have and not want:
            leaked += 1
            first_leaked = block_no if first_leaked is None else first_leaked
        elif want and not have:
            lost += 1
            first_lost = block_no if first_lost is None else first_lost
    if leaked:
        report.add(
            Finding(
                FindingKind.BITMAP_DISAGREEMENT,
                "bitmap",
                f"{leaked} block(s) marked allocated but claimed by no inode "
                f"(first: {first_leaked})",
                block=first_leaked,
            )
        )
    if lost:
        report.add(
            Finding(
                FindingKind.BITMAP_DISAGREEMENT,
                "bitmap",
                f"{lost} claimed block(s) marked free (first: {first_lost})",
                block=first_lost,
            )
        )
