"""Disk images as dumpable, loadable, digest-verified forensic artifacts.

An image file is a self-describing container:

    RIOIMG1\\n
    {"num_bytes": ..., "sector_size": ..., "sha256": ..., ...}\\n
    <raw bytes>

The JSON metadata line carries the canonical SHA-256 of the payload, so
a loaded image proves it is the image that was dumped — the property the
campaign journals rely on when they record ``image_sha256`` next to a
trial's findings.  ``snapshot``/``install`` bridge to any disk-like
object exposing ``peek``/``poke``/``num_sectors``/``sector_size`` (duck
typing, so this module stays import-independent of ``repro.disk``).
"""

from __future__ import annotations

import hashlib
import json

IMAGE_MAGIC = b"RIOIMG1\n"


class ImageFormatError(Exception):
    """An image file that is not a valid RIOIMG1 container."""


def image_sha256(data: bytes) -> str:
    """The canonical digest of a raw image."""
    return hashlib.sha256(data).hexdigest()


def snapshot(disk) -> bytes:
    """The raw bytes of a simulated disk, committed state only."""
    return bytes(disk.peek(0, disk.num_sectors))


def install(disk, data: bytes) -> None:
    """Write a raw image onto a simulated disk (sizes must match)."""
    expected = disk.num_sectors * disk.sector_size
    if len(data) != expected:
        raise ImageFormatError(
            f"image is {len(data)} bytes, disk holds {expected}"
        )
    disk.poke(0, data)


def dump_image(path: str, data: bytes, *, sector_size: int = 512, meta: dict | None = None) -> str:
    """Write an image container to ``path``; returns the payload digest."""
    digest = image_sha256(data)
    header = {
        "num_bytes": len(data),
        "sector_size": sector_size,
        "sha256": digest,
    }
    if meta:
        header.update(meta)
    with open(path, "wb") as fh:
        fh.write(IMAGE_MAGIC)
        fh.write(json.dumps(header, sort_keys=True).encode() + b"\n")
        fh.write(data)
    return digest


def load_image(path: str) -> tuple[bytes, dict]:
    """Read an image container; returns ``(payload, metadata)``.

    Raises :class:`ImageFormatError` on a bad magic line, undecodable
    metadata, a short payload, or a digest mismatch.
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(IMAGE_MAGIC))
        if magic != IMAGE_MAGIC:
            raise ImageFormatError(f"{path}: not a RIOIMG1 container")
        meta_line = fh.readline()
        try:
            meta = json.loads(meta_line)
        except json.JSONDecodeError as exc:
            raise ImageFormatError(f"{path}: bad metadata line: {exc}") from None
        if not isinstance(meta, dict) or "num_bytes" not in meta or "sha256" not in meta:
            raise ImageFormatError(f"{path}: metadata missing num_bytes/sha256")
        data = fh.read(meta["num_bytes"])
    if len(data) != meta["num_bytes"]:
        raise ImageFormatError(
            f"{path}: payload truncated ({len(data)} of {meta['num_bytes']} bytes)"
        )
    digest = image_sha256(data)
    if digest != meta["sha256"]:
        raise ImageFormatError(
            f"{path}: payload digest {digest[:16]}... does not match "
            f"recorded {meta['sha256'][:16]}..."
        )
    return data, meta
