"""The RIOF on-disk layout, declared independently for the verifier.

This module is the dissect layer's *own statement* of the documented
layout (docs/API.md, DESIGN.md "on-disk layout v2"): every constant and
record definition here is re-derived from the format specification, not
imported from ``repro.fs.ondisk``.  If the kernel-side serializers drift
from the documented layout — the shared-bug blind spot an independent
verifier exists to close — the two disagree and the disagreement is
observable, instead of both sides silently agreeing on the same bug.

Layout summary (all little-endian, 8 KB blocks of 16 512-byte sectors):

    block 0                superblock (256-byte checksummed header)
    bitmap_start ..        block allocation bitmap, 1 bit per block
    inode_start ..         inode table, 128-byte slots
    [journal_start ..]     AdvFS journal (optional)
    data_start ..          file/directory data + single-indirect blocks
    total_blocks - 1       backup superblock
"""

from __future__ import annotations

from repro.fs.dissect.cstructs import CStruct

BLOCK_SIZE = 8192
SECTOR_SIZE = 512
SECTORS_PER_BLOCK = BLOCK_SIZE // SECTOR_SIZE

SUPERBLOCK_MAGIC = 0x52494F46  # "RIOF"
ONDISK_VERSION = 2
SUPERBLOCK_HEADER_SIZE = 256
SUPERBLOCK_CHECKSUM_OFFSET = 48
REGION_SUMMARY_OFFSET = 64
REGION_SUMMARY_MAGIC = 0x4752  # "RG"
REGION_SUMMARY_SIZE = 16

INODE_MAGIC = 0x494E  # "NI" on disk ("IN" little-endian)
INODE_SIZE = 128
INODES_PER_BLOCK = BLOCK_SIZE // INODE_SIZE
N_DIRECT = 12
PTRS_PER_INDIRECT = BLOCK_SIZE // 4
MAX_FILE_BLOCKS = N_DIRECT + PTRS_PER_INDIRECT

DIRENT_SIZE = 32
DIRENTS_PER_BLOCK = BLOCK_SIZE // DIRENT_SIZE
MAX_NAME = 27

ROOT_INO = 2

#: Inode type codes (the verifier's own copy of the FileType enum).
FTYPE_FREE = 0
FTYPE_REGULAR = 1
FTYPE_DIRECTORY = 2
FTYPE_SYMLINK = 3
FTYPE_NAMES = {
    FTYPE_FREE: "free",
    FTYPE_REGULAR: "regular",
    FTYPE_DIRECTORY: "directory",
    FTYPE_SYMLINK: "symlink",
}

#: Region summary ``kind`` codes.
REGION_SUPER = 1
REGION_BITMAP = 2
REGION_INODE = 3
REGION_JOURNAL = 4
REGION_DATA = 5
REGION_BACKUP = 6
REGION_NAMES = {
    REGION_SUPER: "super",
    REGION_BITMAP: "bitmap",
    REGION_INODE: "inode",
    REGION_JOURNAL: "journal",
    REGION_DATA: "data",
    REGION_BACKUP: "backup",
}

SUPERBLOCK = CStruct(
    "superblock",
    """
    uint32 magic;
    uint16 version;
    uint16 header_size;
    uint32 total_blocks;
    uint32 bitmap_start;
    uint32 bitmap_blocks;
    uint32 inode_start;
    uint32 inode_blocks;
    uint32 data_start;
    uint32 journal_start;
    uint32 journal_blocks;
    uint32 root_ino;
    uint8  clean;
    uint8  mount_count;
    uint8  summary_count;
    uint8  pad0;
    uint32 checksum;
    char   pad1[12];
    """,
)

REGION_SUMMARY = CStruct(
    "region_summary",
    """
    uint16 magic;
    uint8  kind;
    char   pad0[1];
    uint32 start;
    uint32 blocks;
    uint32 reserved;
    """,
)

INODE = CStruct(
    "inode",
    """
    uint16 magic;
    uint8  ftype;
    char   pad0[1];
    uint16 nlink;
    char   pad1[2];
    uint64 size;
    uint64 mtime_ns;
    uint32 direct[12];
    uint32 indirect;
    uint32 generation;
    """,
)

DIRENT = CStruct(
    "dirent",
    """
    uint32 ino;
    uint8  name_len;
    char   name[27];
    """,
)

assert SUPERBLOCK.size == REGION_SUMMARY_OFFSET
assert REGION_SUMMARY.size == REGION_SUMMARY_SIZE
assert INODE.size == 80 and INODE.size <= INODE_SIZE
assert DIRENT.size == DIRENT_SIZE


def fletcher32(data: bytes) -> int:
    """The verifier's own Fletcher-32 (16-bit words, zero-padded tail).

    Deliberately re-implemented rather than imported from
    ``repro.util.checksum``: the checksum is part of the on-disk format,
    so the verifier must compute it from the format's definition.
    """
    if len(data) % 2:
        data = data + b"\x00"
    sum1 = 0xFFFF
    sum2 = 0xFFFF
    words = len(data) // 2
    index = 0
    while index < words:
        block_end = min(index + 359, words)
        while index < block_end:
            sum1 += data[2 * index] | (data[2 * index + 1] << 8)
            sum2 += sum1
            index += 1
        sum1 = (sum1 & 0xFFFF) + (sum1 >> 16)
        sum2 = (sum2 & 0xFFFF) + (sum2 >> 16)
    sum1 = (sum1 & 0xFFFF) + (sum1 >> 16)
    sum2 = (sum2 & 0xFFFF) + (sum2 >> 16)
    return (sum2 << 16) | sum1


def superblock_checksum(header: bytes) -> int:
    """The expected checksum of a 256-byte superblock header."""
    zeroed = bytearray(header[:SUPERBLOCK_HEADER_SIZE])
    zeroed[SUPERBLOCK_CHECKSUM_OFFSET : SUPERBLOCK_CHECKSUM_OFFSET + 4] = b"\x00" * 4
    return fletcher32(bytes(zeroed))
