"""A tiny cstruct-style compiler: C-like record specs -> struct parsers.

The dissect layer declares every on-disk record as a block of C-like
field definitions (the ``dissect.cstruct`` idiom used by ``dissect.ffs``
for the FreeBSD UFS layout) and compiles it, once, into a
:class:`struct.Struct` plus per-field offsets:

    SUPERBLOCK = CStruct("superblock", '''
        uint32 magic;
        uint16 version;
        char   pad[2];
        uint32 direct[12];
    ''')
    record = SUPERBLOCK.unpack(data)
    record.magic, record.direct[3], SUPERBLOCK.offset_of("version")

Design constraints, because this backs an *independent* verifier:

* pure stdlib — no imports from the kernel-side ``repro.fs`` modules
  (the struct formats here are re-derived from the documented layout,
  not shared with ``repro.fs.ondisk``);
* parsing never raises past :class:`TruncatedRecord`: the caller always
  knows the one failure mode to handle.
"""

from __future__ import annotations

import re
import struct

#: C-ish type name -> (struct format char, byte size).
_TYPES = {
    "uint8": ("B", 1),
    "int8": ("b", 1),
    "uint16": ("H", 2),
    "int16": ("h", 2),
    "uint32": ("I", 4),
    "int32": ("i", 4),
    "uint64": ("Q", 8),
    "int64": ("q", 8),
    "char": ("s", 1),
}

_FIELD_RE = re.compile(
    r"^\s*(?P<type>\w+)\s+(?P<name>\w+)\s*(?:\[\s*(?P<count>\d+)\s*\])?\s*;\s*(?://.*)?$"
)


class CStructError(Exception):
    """A malformed definition (a programming error, raised at compile time)."""


class TruncatedRecord(Exception):
    """The data handed to :meth:`CStruct.unpack` is shorter than the record."""


class Field:
    """One compiled field: name, element type, count, offset, size."""

    __slots__ = ("name", "ctype", "count", "offset", "size", "is_array")

    def __init__(self, name: str, ctype: str, count: int | None, offset: int) -> None:
        self.name = name
        self.ctype = ctype
        self.count = count or 1
        self.is_array = count is not None
        self.offset = offset
        self.size = _TYPES[ctype][1] * self.count

    def format(self) -> str:
        """The struct format fragment for this field."""
        char = _TYPES[self.ctype][0]
        if self.ctype == "char":
            return f"{self.count}s"
        if self.is_array:
            return char * self.count
        return char


class Record:
    """One parsed record: attribute access over the compiled fields."""

    def __init__(self, values: dict) -> None:
        self.__dict__.update(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self.__dict__.items())
        return f"Record({inner})"


class CStruct:
    """A compiled record layout.

    ``definition`` is a newline-separated list of ``type name;`` or
    ``type name[count];`` declarations (``//`` comments allowed).  The
    reserved name prefix ``pad`` declares anonymous padding via
    ``char pad[n];`` — padding is parsed and discarded.
    """

    def __init__(self, name: str, definition: str, *, byte_order: str = "<") -> None:
        self.name = name
        self.byte_order = byte_order
        self.fields: list[Field] = []
        offset = 0
        for line in definition.splitlines():
            line = line.strip()
            if not line or line.startswith("//"):
                continue
            match = _FIELD_RE.match(line)
            if match is None:
                raise CStructError(f"{name}: cannot parse {line!r}")
            ctype = match.group("type")
            if ctype not in _TYPES:
                raise CStructError(f"{name}: unknown type {ctype!r} in {line!r}")
            count = match.group("count")
            field = Field(
                match.group("name"), ctype, int(count) if count else None, offset
            )
            self.fields.append(field)
            offset += field.size
        self.size = offset
        self._struct = struct.Struct(
            byte_order + "".join(f.format() for f in self.fields)
        )
        assert self._struct.size == self.size
        self._by_name = {f.name: f for f in self.fields}

    def offset_of(self, field_name: str) -> int:
        """Byte offset of a field within the record."""
        return self._by_name[field_name].offset

    def unpack(self, data: bytes | bytearray | memoryview) -> Record:
        """Parse one record; raises :class:`TruncatedRecord` when short."""
        if len(data) < self.size:
            raise TruncatedRecord(
                f"{self.name}: need {self.size} bytes, have {len(data)}"
            )
        flat = self._struct.unpack(bytes(data[: self.size]))
        values: dict = {}
        cursor = 0
        for field in self.fields:
            if field.ctype == "char":
                values[field.name] = flat[cursor]
                cursor += 1
            elif field.is_array:
                values[field.name] = tuple(flat[cursor : cursor + field.count])
                cursor += field.count
            else:
                values[field.name] = flat[cursor]
                cursor += 1
        for pad_name in [n for n in values if n.startswith("pad")]:
            del values[pad_name]
        return Record(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CStruct({self.name!r}, size={self.size})"
