"""Typed findings: what the dissect verifier reports instead of raising.

The parser (:mod:`repro.fs.dissect.parser`) never throws on a corrupt
image — every anomaly becomes a :class:`Finding` with a
:class:`FindingKind`, a location, and a human-readable detail line, and
the whole scan is summarized in a :class:`DissectReport` carrying the
canonical SHA-256 of the image it examined.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class FindingKind(enum.Enum):
    """The taxonomy of structural anomalies the verifier can report."""

    #: The image is not even block-shaped (short, or not a whole number
    #: of blocks).
    TRUNCATED_IMAGE = "truncated_image"
    #: Superblock (primary or backup) magic is wrong.
    BAD_MAGIC = "bad_magic"
    #: Superblock layout version is not one this verifier understands.
    BAD_VERSION = "bad_version"
    #: Magic and version parse but the header checksum does not match —
    #: the signature of a torn or half-stale superblock page.
    TORN_PAGE = "torn_page"
    #: Geometry words out of range / overlapping, or the region summary
    #: table disagrees with the geometry words.
    BAD_GEOMETRY = "bad_geometry"
    #: An inode slot that is neither all-zero (never used) nor a valid
    #: record (bad magic or impossible type).
    MANGLED_INODE = "mangled_inode"
    #: A block pointer outside the data region.
    BAD_POINTER = "bad_pointer"
    #: Two inodes (or two slots of one inode) claim the same block.
    DUPLICATE_CLAIM = "duplicate_claim"
    #: An inode's size and its mapped block count disagree (a block is
    #: mapped wholly beyond end-of-file, or size exceeds capacity).
    SIZE_MISMATCH = "size_mismatch"
    #: A directory entry referencing a free, mangled, or out-of-range
    #: inode.
    DANGLING_DIRENT = "dangling_dirent"
    #: A nonzero directory slot that does not parse as a record.
    GARBLED_DIRENT = "garbled_dirent"
    #: "." or ".." missing or pointing at the wrong inode.
    BAD_DOT_ENTRY = "bad_dot_entry"
    #: The directory graph revisits an inode (a cycle or an illegal
    #: hard-linked directory).
    DIRECTORY_CYCLE = "directory_cycle"
    #: An allocated inode unreachable from the root directory.
    UNREACHABLE_INODE = "unreachable_inode"
    #: The allocation bitmap disagrees with the blocks actually claimed.
    BITMAP_DISAGREEMENT = "bitmap_disagreement"
    #: The parser hit an internal error it could not classify (always a
    #: verifier bug; surfaced as a finding so the scan still returns).
    PARSER_ERROR = "parser_error"


@dataclass(frozen=True)
class Finding:
    """One structural anomaly at one place in the image."""

    kind: FindingKind
    where: str  #: e.g. "superblock", "inode 7", "dir 2 block 11"
    detail: str
    block: int | None = None  #: block number, when the anomaly has one

    def to_json_dict(self) -> dict:
        data = {"kind": self.kind.value, "where": self.where, "detail": self.detail}
        if self.block is not None:
            data["block"] = self.block
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "Finding":
        return cls(
            kind=FindingKind(data["kind"]),
            where=data["where"],
            detail=data["detail"],
            block=data.get("block"),
        )

    def __str__(self) -> str:
        return f"[{self.kind.value}] {self.where}: {self.detail}"


#: Findings beyond this are dropped (with a note): a totally garbage
#: image must not produce an unbounded report.
MAX_FINDINGS = 256


@dataclass
class DissectReport:
    """Everything one scan of one image produced."""

    image_sha256: str = ""
    findings: list = field(default_factory=list)
    #: True when a usable superblock (primary or backup) was found and
    #: the full walk ran; False when the scan had to stop at phase 1.
    walk_completed: bool = False
    blocks_total: int = 0
    inodes_scanned: int = 0
    inodes_allocated: int = 0
    directories_walked: int = 0
    findings_dropped: int = 0

    @property
    def clean(self) -> bool:
        """No structural anomalies at all."""
        return not self.findings

    def add(self, finding: Finding) -> None:
        """Record one finding, enforcing the report-size bound."""
        if len(self.findings) >= MAX_FINDINGS:
            self.findings_dropped += 1
            return
        self.findings.append(finding)

    def counts_by_kind(self) -> dict:
        """``{kind value: count}`` over the findings, sorted by key."""
        counts: dict = {}
        for finding in self.findings:
            counts[finding.kind.value] = counts.get(finding.kind.value, 0) + 1
        return dict(sorted(counts.items()))

    def to_json_dict(self) -> dict:
        return {
            "image_sha256": self.image_sha256,
            "findings": [f.to_json_dict() for f in self.findings],
            "walk_completed": self.walk_completed,
            "blocks_total": self.blocks_total,
            "inodes_scanned": self.inodes_scanned,
            "inodes_allocated": self.inodes_allocated,
            "directories_walked": self.directories_walked,
            "findings_dropped": self.findings_dropped,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "DissectReport":
        report = cls(**{k: v for k, v in data.items() if k != "findings"})
        report.findings = [Finding.from_json_dict(f) for f in data["findings"]]
        return report

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace)."""
        return json.dumps(self.to_json_dict(), sort_keys=True, separators=(",", ":"))

    def format(self) -> str:
        """Human-readable scan summary."""
        lines = [
            f"image sha256    {self.image_sha256}",
            f"blocks          {self.blocks_total}",
            f"inodes          {self.inodes_allocated} allocated / {self.inodes_scanned} scanned",
            f"directories     {self.directories_walked} walked"
            + ("" if self.walk_completed else "  (walk aborted: no usable superblock)"),
            f"findings        {len(self.findings)}"
            + (f" (+{self.findings_dropped} dropped)" if self.findings_dropped else ""),
        ]
        for kind, count in self.counts_by_kind().items():
            lines.append(f"    {kind:<22} {count}")
        for finding in self.findings[:20]:
            lines.append(f"  {finding}")
        if len(self.findings) > 20:
            lines.append(f"  ... {len(self.findings) - 20} more")
        lines.append(f"verdict         {'CLEAN' if self.clean else 'CORRUPT'}")
        return "\n".join(lines)
