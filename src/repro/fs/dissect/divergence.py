"""fsck-vs-dissect verdict comparison: the second-opinion protocol.

The campaign's corruption counts historically rested on one judge:
``repro.fs.fsck``, which shares its serializers with the kernel it is
judging.  The dissect verifier is the independent second opinion, and a
*divergence* between the two verdicts is itself a first-class finding:

* **fsck claimed the file system was repaired** (not unrecoverable) but
  the dissect walk of the very image fsck blessed still finds structural
  anomalies — fsck's repair was incomplete, or the two disagree about
  the format (a serializer bug one of them shares with the kernel);
* **fsck gave up** (unrecoverable) but the dissect walk parses the image
  clean — fsck's own parsing is the broken side.

To preserve the verifier's independence this module never imports
``repro.fs.fsck``; callers hand over fsck's verdict as plain values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fs.dissect.findings import DissectReport


@dataclass
class DivergenceReport:
    """One fsck-vs-dissect comparison over one post-recovery image."""

    #: True when the two judges agree about whether the image is usable.
    agreed: bool
    #: fsck's claim: the file system is consistent after its repairs.
    fsck_consistent: bool
    #: The dissect walk found no structural anomalies.
    dissect_clean: bool
    fsck_fix_count: int = 0
    dissect_finding_count: int = 0
    image_sha256: str = ""
    #: Human-readable reasons, nonempty exactly when ``agreed`` is False.
    details: list = field(default_factory=list)

    def to_json_dict(self) -> dict:
        return {
            "agreed": self.agreed,
            "fsck_consistent": self.fsck_consistent,
            "dissect_clean": self.dissect_clean,
            "fsck_fix_count": self.fsck_fix_count,
            "dissect_finding_count": self.dissect_finding_count,
            "image_sha256": self.image_sha256,
            "details": list(self.details),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "DivergenceReport":
        return cls(**data)

    def format(self) -> str:
        """One-paragraph human-readable summary."""
        if self.agreed:
            state = "clean" if self.dissect_clean else "corrupt"
            return (
                f"fsck and dissect agree (image {state}; fsck fixed "
                f"{self.fsck_fix_count}, dissect found {self.dissect_finding_count})"
            )
        lines = ["FSCK/DISSECT DIVERGENCE:"]
        lines += [f"  {reason}" for reason in self.details]
        lines.append(f"  image sha256 {self.image_sha256}")
        return "\n".join(lines)


def fsck_acknowledged(where: str, fixes) -> bool:
    """True when fsck's own fix list names location ``where``.

    fsck sometimes repairs a structure only partially and says so — an
    orphaned directory reconnected into ``lost+found`` keeps its missing
    dot entries because there is no room to recreate them, and the fix
    list records exactly that.  The independent verifier then flags the
    same defect at the same location.  That is *agreement with
    disclosure*, not divergence: both judges saw the damage and said so.
    A finding only counts against fsck when it sits at a location fsck's
    report never mentioned.  Fix messages all lead with the location
    (``"dir 4: ..."``, ``"inode 7: ..."``, ``"superblock: ..."``) and
    finding locations lead with the same token (``"dir 4"``,
    ``"dir 4 block 11"``), so the match is a prefix check on that token.

    ``where`` is the finding's location string; ``fixes`` is fsck's fix
    message list, passed as plain values so this module stays free of
    any ``repro.fs.fsck`` import (the second opinion's independence).
    """
    parts = str(where).split()
    if not parts:
        return False
    if len(parts) >= 2 and parts[1].isdigit():
        token = f"{parts[0]} {parts[1]}:"
    else:
        token = f"{parts[0]}:"
    return any(fix.startswith(token) for fix in fixes)


def compare_verdicts(
    *,
    fsck_unrecoverable: bool,
    fsck_fix_count: int,
    report: DissectReport,
) -> DivergenceReport:
    """Compare fsck's verdict on a disk with the dissect scan of its image.

    The dissect scan must have run on the image *as fsck left it* (fsck
    repairs in place, so the comparison is "did the repair actually
    restore structural consistency", not "did both see the same damage").
    """
    fsck_consistent = not fsck_unrecoverable
    dissect_clean = report.clean
    details: list = []
    if fsck_consistent and not dissect_clean:
        counts = ", ".join(
            f"{kind} x{n}" for kind, n in report.counts_by_kind().items()
        )
        details.append(
            f"fsck reported the file system repaired ({fsck_fix_count} fixes) "
            f"but dissect still finds: {counts}"
        )
    elif not fsck_consistent and dissect_clean:
        details.append(
            "fsck declared the file system unrecoverable but the dissect walk "
            "parses the image clean"
        )
    if not report.walk_completed and fsck_consistent:
        # No usable superblock for the independent parser even though
        # fsck claims it repaired one: a format-level disagreement.
        details.append(
            "dissect found no usable superblock on an image fsck claims it repaired"
        )
    return DivergenceReport(
        agreed=not details,
        fsck_consistent=fsck_consistent,
        dissect_clean=dissect_clean,
        fsck_fix_count=fsck_fix_count,
        dissect_finding_count=len(report.findings),
        image_sha256=report.image_sha256,
        details=details,
    )
