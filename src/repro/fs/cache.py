"""The page cache layer: buffer cache (metadata) and UBC (file data).

Mirrors Digital Unix as described in section 2: metadata blocks live in
the **buffer cache**, in wired kernel virtual memory mapped through the
page table; regular file data lives in the **UBC**, in physical pages
addressed through KSEG.  The distinction is load-bearing for Rio: page
table protection alone covers the buffer cache, but protecting the UBC
requires forcing KSEG through the TLB.

Every cached page owns a 32-byte *buffer header* in the kernel heap
(magic, destination address, size) — real bytes that the write path reads
before every copy, so heap corruption redirects or panics real writes.

A pluggable :class:`CacheGuard` observes attach/detach and brackets every
write.  The null guard (non-Rio systems) does nothing; Rio's guard (in
:mod:`repro.core`) opens/closes protection windows, maintains the registry
entry (address, file id, offset, size, dirty, disk block) and the
detection checksums.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigurationError, KernelPanic, NoSpace, OutOfMemory
from repro.fs.types import BLOCK_SIZE, FileId, SECTORS_PER_BLOCK
from repro.hw.bus import AccessContext
from repro.util.checksum import fletcher32
from repro.isa.routines import (
    CACHE_HDR_MAGIC,
    HDR_BYTES,
    HDR_DST_OFF,
    HDR_MAGIC_OFF,
    HDR_SIZE_OFF,
)

#: Access context for I/O-path stores (fills from disk).  Indirect
#: corruption — an I/O procedure called with wrong parameters — flows
#: through here and is *not* stopped by Rio's protection (section 3.2).
IO_CONTEXT = AccessContext(procedure="io", is_io_path=True)


@dataclass
class CachePage:
    """One cached 8 KB page (a metadata block or a file data page)."""

    key: tuple
    kind: str  # "meta" | "data"
    dev: int
    pfn: int
    vaddr: int
    hdr_addr: int
    dirty: bool = False
    file_id: Optional[FileId] = None
    file_offset: int = 0
    #: Disk block this page belongs at (None until known/allocated).
    disk_block: Optional[int] = None
    pin_count: int = 0
    write_generation: int = 0
    registry_slot: Optional[int] = None
    #: Metadata class ("super" | "bitmap" | "inode" | "dir" | "indirect" |
    #: "journal"); policies use it to decide which updates are synchronous.
    meta_class: Optional[str] = None
    #: Byte ranges written since the journal last saw this page; AdvFS
    #: logs these extents rather than whole 8 KB images.
    journal_extents: list = field(default_factory=list)
    #: Populated by the guard when checksums are maintained.
    checksum: int = 0

    def pin(self) -> None:
        self.pin_count += 1

    def unpin(self) -> None:
        if self.pin_count <= 0:
            raise ConfigurationError("unpin of unpinned page")
        self.pin_count -= 1


class CacheGuard:
    """Null guard: no protection, no registry, no checksums."""

    def on_attach(self, page: CachePage) -> None:
        pass

    def on_detach(self, page: CachePage) -> None:
        pass

    def begin_write(self, page: CachePage) -> None:
        pass

    def end_write(self, page: CachePage) -> None:
        pass

    def on_dirty_changed(self, page: CachePage) -> None:
        pass

    def on_placement_changed(self, page: CachePage) -> None:
        """File id / offset / disk block of the page changed."""


class PageCache:
    """Base class for the two caches; subclasses differ in addressing."""

    kind = "meta"

    def __init__(self, kernel, capacity: int, guard: CacheGuard | None = None) -> None:
        self.kernel = kernel
        self.capacity = capacity
        self.guard = guard or CacheGuard()
        self.pages: "OrderedDict[tuple, CachePage]" = OrderedDict()
        self.stat_hits = 0
        self.stat_misses = 0
        self.stat_evictions = 0
        self.stat_flushes = 0
        #: Clustered eviction write-back sweeps (see :meth:`_clean_cluster`).
        self.stat_clean_sweeps = 0
        self._recorder = getattr(kernel, "recorder", None)

    # -- subclass hooks ---------------------------------------------------

    def _acquire_vaddr(self, pfn: int) -> int:
        raise NotImplementedError

    def _release_vaddr(self, page: CachePage) -> None:
        raise NotImplementedError

    # -- lookup / attach ------------------------------------------------------

    def lookup(self, key: tuple) -> Optional[CachePage]:
        page = self.pages.get(key)
        if page is not None:
            self.pages.move_to_end(key)
        return page

    def get(
        self,
        key: tuple,
        *,
        loader: Optional[Callable[[CachePage], None]] = None,
        file_id: Optional[FileId] = None,
        file_offset: int = 0,
        disk_block: Optional[int] = None,
    ) -> CachePage:
        """Return the cached page for ``key``, attaching (and optionally
        loading) it on a miss."""
        page = self.lookup(key)
        if page is not None:
            self.stat_hits += 1
            return page
        self.stat_misses += 1
        chaos = getattr(self.kernel, "chaos", None)
        if (
            chaos is not None
            and not self.kernel.locks.any_held()
            and chaos.should_fail("fail_alloc")
        ):
            # Denied before any state changes: no frame, no header, no
            # cache entry — the request fails cleanly with ENOMEM.  Only
            # outside lock sections: an exception unwinding through a
            # held kernel lock leaks it (a crash path), and a critical
            # section's page grant comes from a reserved pool anyway.
            raise OutOfMemory("chaos: page grant denied")
        self._make_room()
        kernel = self.kernel
        pfn = kernel.frames.alloc()
        vaddr = self._acquire_vaddr(pfn)
        hdr = kernel.heap.kmalloc(HDR_BYTES)
        ctx = AccessContext(procedure="cache_attach")
        kernel.bus.store_u64(hdr + HDR_MAGIC_OFF, CACHE_HDR_MAGIC, ctx)
        kernel.bus.store_u64(hdr + HDR_DST_OFF, vaddr, ctx)
        kernel.bus.store_u64(hdr + HDR_SIZE_OFF, BLOCK_SIZE, ctx)
        page = CachePage(
            key=key,
            kind=self.kind,
            dev=key[1],
            pfn=pfn,
            vaddr=vaddr,
            hdr_addr=hdr,
            file_id=file_id,
            file_offset=file_offset,
            disk_block=disk_block,
        )
        self.pages[key] = page
        self.guard.on_attach(page)
        if loader is not None:
            loader(page)
        else:
            self.fill(page, b"\x00" * BLOCK_SIZE)
        return page

    #: Fraction of capacity cleaned in one clustered eviction sweep.
    EVICT_CLUSTER_FRACTION = 8

    def _make_room(self) -> None:
        while len(self.pages) >= self.capacity:
            self._evict_one()

    def _evict_one(self) -> None:
        """Evict the least-recently-used unpinned page.

        When the victim is dirty, a clustered cleaning sweep
        (:meth:`_clean_cluster`) first writes a batch of LRU dirty pages
        back in ascending disk-block order — one elevator pass and one
        completion wait instead of a full seek-plus-rotation stall per
        evicted page.  The victim is part of that batch, so it is clean
        (on the platter) before it is dropped, and the next evictions in
        LRU order hit already-cleaned pages for free: sustained overflow
        costs an amortized fraction of a batched write per eviction
        rather than a synchronous disk write each (the superlinear term
        that collapsed the 64-client file service).
        """
        victim = None
        for page in self.pages.values():
            if page.pin_count == 0:
                victim = page
                break
        if victim is None:
            raise NoSpace("all cache pages pinned")
        if victim.dirty:
            self._clean_cluster()
        self.drop(victim)
        self.stat_evictions += 1

    def _clean_cluster(self) -> None:
        """Write back a batch of LRU dirty pages and wait once.

        Flushes up to ``capacity // EVICT_CLUSTER_FRACTION`` unpinned
        dirty pages asynchronously in ascending disk-block order (an
        elevator pass: consecutive blocks coalesce into near-sequential
        transfers), then advances the clock to the last write's
        completion so every flushed page is on the platter — and marked
        clean — before any of them may be dropped.  Durability across a
        crash is preserved: a page leaves memory only after its disk
        copy is safe.
        """
        budget = max(1, self.capacity // self.EVICT_CLUSTER_FRACTION)
        cluster = []
        for page in self.pages.values():
            if page.pin_count == 0 and page.dirty:
                if page.disk_block is None:
                    # No placement: fall through to the strict sync path
                    # so the misconfiguration surfaces exactly as before.
                    self.flush_page(page, sync=True)
                    return
                cluster.append(page)
                if len(cluster) >= budget:
                    break
        if not cluster:
            raise NoSpace("all cache pages pinned")
        self.stat_clean_sweeps += 1
        last_by_dev: dict[int, object] = {}
        for page in sorted(cluster, key=lambda p: (p.dev, p.disk_block)):
            request = self.flush_page(page, sync=False)
            if request is not None:
                last_by_dev[page.dev] = request
        if last_by_dev:
            done_ns = max(r.completion_ns for r in last_by_dev.values())
            self.kernel.clock.advance_to(done_ns)  # retires the writes

    def drop(self, page: CachePage) -> None:
        """Detach a page without writing it anywhere."""
        self.guard.on_detach(page)
        self.pages.pop(page.key, None)
        self._release_vaddr(page)
        self.kernel.heap.kfree(page.hdr_addr)
        self.kernel.frames.free(page.pfn)

    # -- reading / writing -------------------------------------------------------

    def read(self, page: CachePage, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > BLOCK_SIZE:
            raise ConfigurationError("cache read out of page bounds")
        return self.kernel.bus.load(page.vaddr + offset, length, IO_CONTEXT)

    def _header_dst(self, page: CachePage, ctx: AccessContext) -> int:
        """Read the destination pointer from the in-heap buffer header,
        with the magic sanity check a real kernel would apply."""
        magic = self.kernel.bus.load_u64(page.hdr_addr + HDR_MAGIC_OFF, ctx)
        if magic != CACHE_HDR_MAGIC:
            raise KernelPanic("buffer header magic corrupted")
        return self.kernel.bus.load_u64(page.hdr_addr + HDR_DST_OFF, ctx)

    def write_into(
        self,
        page: CachePage,
        offset: int,
        data: bytes,
        ctx: AccessContext = IO_CONTEXT,
    ) -> None:
        """Copy ``data`` into the page through the kernel data plane."""
        if offset < 0 or offset + len(data) > BLOCK_SIZE:
            raise ConfigurationError("cache write out of page bounds")
        if not data:
            return
        kernel = self.kernel
        rec = self._recorder
        if rec is not None and rec.enabled:
            rec.emit(
                "cache", "write",
                page=str(page.key), kind=self.kind,
                offset=offset, length=len(data),
            )
        staging = kernel.stage_data(data)
        # No try/finally here on purpose: if the system crashes mid-copy,
        # the protection window stays open and the registry CHANGING flag
        # (or shadow redirection) stays set — exactly the crash-time state
        # the warm reboot and the checksum detector must see.
        self.guard.begin_write(page)
        if self.kind == "data":
            # UBC path: uiomove/copyin — plain bcopy to the address
            # read out of the buffer header (overrun hook applies).
            dst = self._header_dst(page, ctx)
            kernel.klib.bcopy(staging, dst + offset, len(data), ctx)
        else:
            # Metadata path: bounds-checked copy through the header.
            kernel.klib.cache_copy(page.hdr_addr, staging, offset, len(data), ctx)
        self.guard.end_write(page)
        page.write_generation += 1
        page.journal_extents.append((offset, len(data)))
        self.set_dirty(page, True)

    def fill(self, page: CachePage, data: bytes) -> None:
        """Bulk-fill a page (from disk or zeroes) via the authorized path;
        leaves the page clean."""
        if len(data) != BLOCK_SIZE:
            raise ConfigurationError("fill requires a whole page")
        rec = self._recorder
        if rec is not None and rec.enabled:
            rec.emit("cache", "fill", page=str(page.key), kind=self.kind)
        self.guard.begin_write(page)
        self.kernel.bus.store(page.vaddr, data, IO_CONTEXT)
        self.guard.end_write(page)
        page.journal_extents.clear()  # a full (re)load supersedes deltas

    def set_dirty(self, page: CachePage, dirty: bool) -> None:
        if page.dirty != dirty:
            page.dirty = dirty
            self.guard.on_dirty_changed(page)

    def set_placement(
        self,
        page: CachePage,
        *,
        file_id: Optional[FileId] = None,
        file_offset: Optional[int] = None,
        disk_block: Optional[int] = None,
    ) -> None:
        if file_id is not None:
            page.file_id = file_id
        if file_offset is not None:
            page.file_offset = file_offset
        if disk_block is not None:
            page.disk_block = disk_block
        self.guard.on_placement_changed(page)

    # -- write-back ------------------------------------------------------------

    def flush_page(self, page: CachePage, *, sync: bool):
        """Write a dirty page to its disk block; returns the disk request.

        The transfer reads physical memory directly (DMA does not go
        through the CPU's TLB), so this is also the path by which
        *indirect* corruption — wrong parameters handed to an I/O routine —
        reaches the disk despite any protection.
        """
        if not page.dirty:
            return None
        if page.disk_block is None:
            raise ConfigurationError(f"page {page.key} has no disk placement")
        kernel = self.kernel
        disk = kernel.block_device(page.dev)
        data = kernel.memory.read(page.pfn * BLOCK_SIZE, BLOCK_SIZE)
        generation = page.write_generation
        self.stat_flushes += 1
        rec = self._recorder
        if rec is not None and rec.enabled:
            # The content checksum makes corrupted flushes visible in the
            # event stream without shipping page images around.
            rec.emit(
                "wb", "flush",
                page=str(page.key), block=page.disk_block,
                sync=sync, checksum=fletcher32(data),
            )

        def on_complete(_request) -> None:
            live = self.pages.get(page.key)
            if live is page and page.write_generation == generation:
                self.set_dirty(page, False)

        request = disk.write(
            page.disk_block * SECTORS_PER_BLOCK,
            data,
            sync=sync,
            on_complete=on_complete,
        )
        # The flush boundary is the upload boundary: a tiered backing
        # store (see repro.backend.tiered) queues the block for remote
        # upload the moment its local write is issued.  The disk poked
        # the new content synchronously above, so an upload triggered
        # here reads exactly what this flush wrote.
        backing = getattr(kernel, "backing", None)
        if backing is not None and backing.disk is disk:
            backing.note_flush(page.disk_block)
        return request

    def dirty_pages(self) -> list[CachePage]:
        return [p for p in self.pages.values() if p.dirty]

    def flush_all(self, *, sync: bool) -> int:
        """Flush every dirty page; returns the number of flushes issued."""
        dirty = self.dirty_pages()
        for page in dirty:
            self.flush_page(page, sync=sync)
        return len(dirty)

    def invalidate_file(self, file_id: FileId) -> None:
        """Drop every page belonging to a (deleted) file."""
        for page in [p for p in self.pages.values() if p.file_id == file_id]:
            self.drop(page)


class BufferCache(PageCache):
    """Metadata cache in wired kernel virtual memory (mapped pages)."""

    kind = "meta"

    def __init__(self, kernel, capacity: int, base_vaddr: int, guard=None) -> None:
        super().__init__(kernel, capacity, guard)
        self.base_vaddr = base_vaddr
        self._free_slots = list(range(capacity - 1, -1, -1))

    def _acquire_vaddr(self, pfn: int) -> int:
        if not self._free_slots:
            raise NoSpace("buffer cache slots exhausted")
        slot = self._free_slots.pop()
        vaddr = self.base_vaddr + slot * BLOCK_SIZE
        self.kernel.mmu.map(vaddr // BLOCK_SIZE, pfn, writable=True)
        return vaddr

    def _release_vaddr(self, page: CachePage) -> None:
        vpn = page.vaddr // BLOCK_SIZE
        self.kernel.mmu.unmap(vpn)
        self._free_slots.append((page.vaddr - self.base_vaddr) // BLOCK_SIZE)


class UnifiedBufferCache(PageCache):
    """File data cache in physical pages, addressed through KSEG.

    "To conserve TLB slots, the UBC is not mapped into the kernel's
    virtual address space; instead it is accessed using physical
    addresses." — section 2.  This is why plain page-table protection
    cannot cover it.
    """

    kind = "data"

    def _acquire_vaddr(self, pfn: int) -> int:
        return self.kernel.mmu.kseg_address(pfn * BLOCK_SIZE)

    def _release_vaddr(self, page: CachePage) -> None:
        # Nothing mapped; but stale KSEG protection must not leak to the
        # frame's next owner.
        self.kernel.mmu.set_kseg_writable(page.pfn, True)
