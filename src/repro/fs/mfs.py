"""MFS: the memory file system (Table 2's performance ceiling).

"The Memory File System, which is completely memory-resident and does no
disk I/O, is shown to illustrate optimal performance" [McKusick90].  Files
live in Python structures; the only virtual time consumed is the CPU cost
of the copies (charged at the same rate as the kernel data plane) and the
syscall overhead charged by the VFS.  Nothing survives a crash — data is
"never" permanent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    FileSystemError,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from repro.fs.types import FileType, MAX_NAME, ROOT_INO


@dataclass
class _MemNode:
    ino: int
    ftype: FileType
    data: bytearray = field(default_factory=bytearray)
    children: dict[str, int] = field(default_factory=dict)
    nlink: int = 1
    mtime_ns: int = 0
    symlink_target: str = ""

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def is_allocated(self) -> bool:
        return True


class MemoryFileSystem:
    """A purely memory-resident file system with the UFS operation surface."""

    fs_type = "mfs"

    def __init__(self, kernel, dev: int, policy=None) -> None:
        self.kernel = kernel
        self.dev = dev
        self.policy = policy  # accepted for interface parity; unused
        self._nodes: dict[int, _MemNode] = {}
        self._next_ino = ROOT_INO
        self.mounted = False

    def mount(self) -> None:
        root = self._new_node(FileType.DIRECTORY)
        assert root.ino == ROOT_INO
        root.nlink = 2
        self.kernel.register_filesystem(self.dev, self)
        self.mounted = True

    def unmount(self) -> None:
        self.mounted = False

    def _new_node(self, ftype: FileType) -> _MemNode:
        node = _MemNode(ino=self._next_ino, ftype=ftype)
        self._next_ino += 1
        self._nodes[node.ino] = node
        return node

    def _charge_copy(self, nbytes: int) -> None:
        self.kernel.charge_copy(nbytes)

    # -- path resolution -------------------------------------------------

    @staticmethod
    def _split_path(path: str) -> list[str]:
        if not path.startswith("/"):
            raise InvalidArgument(f"path must be absolute: {path!r}")
        parts = [p for p in path.split("/") if p]
        for part in parts:
            if len(part.encode()) > MAX_NAME:
                raise InvalidArgument(f"name too long: {part!r}")
        return parts

    def _node(self, ino: int) -> _MemNode:
        node = self._nodes.get(ino)
        if node is None:
            raise FileNotFound(f"inode {ino}")
        return node

    MAX_SYMLINK_DEPTH = 8

    def namei(self, path: str, *, follow: bool = True) -> int:
        parts = list(self._split_path(path))
        ino = ROOT_INO
        index = 0
        expansions = 0
        while index < len(parts):
            part = parts[index]
            node = self._node(ino)
            if node.ftype != FileType.DIRECTORY:
                raise NotADirectory(path)
            if part not in node.children:
                raise FileNotFound(path)
            child = self._node(node.children[part])
            is_last = index == len(parts) - 1
            if child.ftype == FileType.SYMLINK and (follow or not is_last):
                expansions += 1
                if expansions > self.MAX_SYMLINK_DEPTH:
                    raise InvalidArgument(f"too many symlinks: {path!r}")
                target = child.symlink_target
                remainder = parts[index + 1 :]
                if target.startswith("/"):
                    parts = self._split_path(target) + remainder
                    ino = ROOT_INO
                else:
                    parts = [p for p in target.split("/") if p] + remainder
                index = 0
                continue
            ino = child.ino
            index += 1
        return ino

    def _parent(self, path: str) -> tuple[_MemNode, str]:
        parts = self._split_path(path)
        if not parts:
            raise InvalidArgument("path refers to the root directory")
        ino = ROOT_INO
        for part in parts[:-1]:
            node = self._node(ino)
            if node.ftype != FileType.DIRECTORY:
                raise NotADirectory(path)
            if part not in node.children:
                raise FileNotFound(path)
            ino = node.children[part]
        parent = self._node(ino)
        if parent.ftype != FileType.DIRECTORY:
            raise NotADirectory(path)
        return parent, parts[-1]

    # -- namespace operations ----------------------------------------------

    def create(self, path: str) -> int:
        parent, name = self._parent(path)
        if name in parent.children:
            raise FileExists(path)
        node = self._new_node(FileType.REGULAR)
        parent.children[name] = node.ino
        return node.ino

    def mkdir(self, path: str) -> int:
        parent, name = self._parent(path)
        if name in parent.children:
            raise FileExists(path)
        node = self._new_node(FileType.DIRECTORY)
        node.nlink = 2
        parent.children[name] = node.ino
        parent.nlink += 1
        return node.ino

    def unlink(self, path: str) -> None:
        parent, name = self._parent(path)
        if name not in parent.children:
            raise FileNotFound(path)
        node = self._node(parent.children[name])
        if node.ftype == FileType.DIRECTORY:
            raise IsADirectory(path)
        del parent.children[name]
        node.nlink -= 1
        if node.nlink <= 0:
            del self._nodes[node.ino]

    def rmdir(self, path: str) -> None:
        parent, name = self._parent(path)
        if name not in parent.children:
            raise FileNotFound(path)
        node = self._node(parent.children[name])
        if node.ftype != FileType.DIRECTORY:
            raise NotADirectory(path)
        if node.children:
            raise DirectoryNotEmpty(path)
        del parent.children[name]
        del self._nodes[node.ino]
        parent.nlink -= 1

    def symlink(self, target: str, link_path: str) -> int:
        parent, name = self._parent(link_path)
        if name in parent.children:
            raise FileExists(link_path)
        node = self._new_node(FileType.SYMLINK)
        node.symlink_target = target
        parent.children[name] = node.ino
        return node.ino

    def readlink(self, path: str) -> str:
        node = self._node(self.namei(path, follow=False))
        if node.ftype != FileType.SYMLINK:
            raise InvalidArgument(f"not a symlink: {path!r}")
        return node.symlink_target

    def link(self, existing: str, new_path: str) -> None:
        ino = self.namei(existing)
        node = self._node(ino)
        if node.ftype == FileType.DIRECTORY:
            raise IsADirectory(existing)
        parent, name = self._parent(new_path)
        if name in parent.children:
            raise FileExists(new_path)
        node.nlink += 1
        parent.children[name] = ino

    def rename(self, old_path: str, new_path: str) -> None:
        old_parent, old_name = self._parent(old_path)
        if old_name not in old_parent.children:
            raise FileNotFound(old_path)
        new_parent, new_name = self._parent(new_path)
        ino = old_parent.children[old_name]
        existing = new_parent.children.get(new_name)
        if existing is not None and existing != ino:
            target = self._node(existing)
            if target.ftype == FileType.DIRECTORY:
                raise IsADirectory(new_path)
            del new_parent.children[new_name]
            del self._nodes[existing]
        del old_parent.children[old_name]
        new_parent.children[new_name] = ino

    # -- data operations --------------------------------------------------------

    def write(self, ino: int, offset: int, data: bytes) -> int:
        if offset < 0:
            raise InvalidArgument("negative offset")
        node = self._node(ino)
        if node.ftype != FileType.REGULAR:
            raise IsADirectory(f"inode {ino}")
        if offset > len(node.data):
            node.data.extend(b"\x00" * (offset - len(node.data)))
        node.data[offset : offset + len(data)] = data
        node.mtime_ns = self.kernel.clock.now_ns
        self._charge_copy(len(data))
        return len(data)

    def read(self, ino: int, offset: int, length: int) -> bytes:
        node = self._node(ino)
        if node.ftype != FileType.REGULAR:
            raise IsADirectory(f"inode {ino}")
        chunk = bytes(node.data[max(0, offset) : max(0, offset) + max(0, length)])
        self._charge_copy(len(chunk))
        return chunk

    def truncate(self, ino: int, size: int = 0) -> None:
        node = self._node(ino)
        if node.ftype != FileType.REGULAR:
            raise IsADirectory(f"inode {ino}")
        del node.data[size:]

    # -- inspection ------------------------------------------------------------

    def stat(self, path: str) -> _MemNode:
        return self._node(self.namei(path))

    def readdir(self, path: str) -> list[str]:
        node = self._node(self.namei(path))
        if node.ftype != FileType.DIRECTORY:
            raise NotADirectory(path)
        return sorted(node.children)

    def exists(self, path: str) -> bool:
        try:
            self.namei(path)
            return True
        except FileSystemError:
            return False

    def size_of(self, ino: int) -> int:
        return self._node(ino).size

    # -- no-op durability surface --------------------------------------------------

    def fsync(self, ino: int) -> None:
        pass  # nothing is ever durable

    def sync(self) -> None:
        pass

    def close_hook(self, ino: int) -> None:
        pass

    def periodic_flush(self) -> None:
        pass
