"""The block bitmap allocator.

The bitmap is ordinary file system metadata: it lives in on-disk blocks,
is cached in the buffer cache, and is updated through the same guarded
write path as everything else — so it is corruptible by crashes and
repairable by ``fsck`` (which rebuilds it from the reachable inodes).
"""

from __future__ import annotations

from repro.errors import KernelPanic, NoSpace
from repro.fs.types import BLOCK_SIZE

BITS_PER_BLOCK = BLOCK_SIZE * 8


class BlockAllocator:
    """Allocates data blocks for one mounted file system.

    ``fs`` must provide ``sb`` (the superblock), ``kernel`` (for the
    bitmap lock and the chaos registry), ``read_meta`` and
    ``write_meta``.  A next-fit cursor keeps consecutive allocations
    mostly sequential, which matters for the disk timing model.
    """

    def __init__(self, fs) -> None:
        self.fs = fs
        self._cursor = fs.sb.data_start

    def _bit_location(self, block_no: int) -> tuple[int, int, int]:
        """Return (bitmap block number, byte offset, bit index).

        An out-of-range block number at runtime means some structure's
        block pointer is corrupt — a kernel consistency check ("bad block
        number"), i.e. a panic, not a harness configuration error."""
        sb = self.fs.sb
        if not 0 <= block_no < sb.total_blocks:
            raise KernelPanic(f"bad block number {block_no}")
        index = block_no // BITS_PER_BLOCK
        if index >= sb.bitmap_blocks:
            raise KernelPanic(f"block {block_no} beyond bitmap")
        within = block_no % BITS_PER_BLOCK
        return sb.bitmap_start + index, within // 8, within % 8

    def is_allocated(self, block_no: int) -> bool:
        blk, byte_off, bit = self._bit_location(block_no)
        byte = self.fs.read_meta(blk, byte_off, 1, meta_class="bitmap")[0]
        return bool(byte & (1 << bit))

    def _set_bit(self, block_no: int, value: bool) -> None:
        blk, byte_off, bit = self._bit_location(block_no)
        byte = self.fs.read_meta(blk, byte_off, 1, meta_class="bitmap")[0]
        if value:
            byte |= 1 << bit
        else:
            byte &= ~(1 << bit)
        self.fs.write_meta(blk, byte_off, bytes([byte]), meta_class="bitmap")

    def alloc(self) -> int:
        """Allocate one data block; next-fit from the cursor.

        ``NoSpace`` — genuine or chaos-injected — is raised *outside*
        the bitmap lock section: an exception unwinding through a held
        kernel lock leaks it (that is a crash path in this kernel), and
        running out of blocks is an ordinary error, not a crash.
        """
        chaos = getattr(self.fs.kernel, "chaos", None)
        if chaos is not None and chaos.should_fail("fail_disk_full"):
            # Denied before the bitmap is touched: the fs looks exactly
            # as if it had genuinely run out of blocks.
            raise NoSpace("chaos: file system full")
        sb = self.fs.sb
        span = sb.total_blocks - sb.data_start
        with self.fs.kernel.locks.lock("bitmap"):
            for step in range(span):
                candidate = sb.data_start + (self._cursor - sb.data_start + step) % span
                if not self.is_allocated(candidate):
                    self._set_bit(candidate, True)
                    self._cursor = candidate + 1
                    return candidate
        raise NoSpace("file system full")

    def free(self, block_no: int) -> None:
        if block_no < self.fs.sb.data_start:
            # Another consistency check: data paths never free metadata.
            raise KernelPanic(f"bfree: freeing metadata block {block_no}")
        with self.fs.kernel.locks.lock("bitmap"):
            if not self.is_allocated(block_no):
                # Freeing a free block means the bitmap or the caller's
                # block pointers are corrupt — a classic kernel
                # consistency check.
                raise KernelPanic(f"bfree: block {block_no} already free")
            self._set_bit(block_no, False)

    def count_free(self) -> int:
        sb = self.fs.sb
        free = 0
        for block_no in range(sb.data_start, sb.total_blocks):
            if not self.is_allocated(block_no):
                free += 1
        return free
