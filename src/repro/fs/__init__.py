"""File systems: UFS (with fsck), AdvFS (journaling), MFS (memory-only).

Everything is byte-level: superblocks, inodes, directories and bitmaps are
serialized structures in real (simulated) disk sectors and cache pages, so
crashes corrupt real state, ``fsck`` repairs real damage, and the warm
reboot restores real bytes.

The cache layer below the file systems mirrors Digital Unix (section 2):
metadata lives in the traditional **buffer cache** (wired kernel virtual
memory); regular file data lives in the **UBC**, which "is not mapped into
the kernel's virtual address space; instead it is accessed using physical
addresses" — i.e. through KSEG, which is exactly why Rio must force KSEG
through the TLB to protect it.
"""

from repro.fs.types import (
    BLOCK_SIZE,
    FileId,
    FileType,
    ROOT_INO,
    Whence,
)
from repro.fs.ondisk import DirEntry, Inode, Superblock
from repro.fs.ufs import UFS, UFSParams
from repro.fs.mfs import MemoryFileSystem
from repro.fs.advfs import AdvFS
from repro.fs.fsck import FsckReport, fsck
from repro.fs.writeback import (
    WritePolicy,
    WRITE_POLICIES,
    make_policy,
)
from repro.fs.cache import BufferCache, CachePage, UnifiedBufferCache
from repro.fs.validate import ValidationReport, validate

__all__ = [
    "BLOCK_SIZE",
    "FileId",
    "FileType",
    "ROOT_INO",
    "Whence",
    "DirEntry",
    "Inode",
    "Superblock",
    "UFS",
    "UFSParams",
    "MemoryFileSystem",
    "AdvFS",
    "FsckReport",
    "fsck",
    "WritePolicy",
    "WRITE_POLICIES",
    "make_policy",
    "BufferCache",
    "CachePage",
    "UnifiedBufferCache",
    "ValidationReport",
    "validate",
]
