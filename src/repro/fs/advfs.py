"""AdvFS: the journalling file system of Table 2.

"AdvFS is a journalling file system that reduces the penalty of metadata
updates by writing metadata sequentially to a log."  Metadata updates are
appended as *extent records* (the changed byte range of the changed
block, as real journals log deltas rather than whole blocks) to an
on-disk journal — cheap, sequential, asynchronous.  The in-place copies
are written only at checkpoints.  After a crash, replaying the journal
brings the metadata up to date, then fsck verifies the result.

Journal layout (inside the region the superblock reserves):

* block ``journal_start``: the journal header — magic and current epoch;
* after it: records, each a 512-byte header (magic, epoch, sequence,
  target block, byte offset, length, payload checksum) followed by a
  sector-padded payload.

A checkpoint writes all dirty metadata in place, bumps the epoch and
resets the head; recovery applies only records of the current epoch, in
sequence order, stopping at the first invalid (e.g. torn) record.
"""

from __future__ import annotations

import struct

from repro.errors import ConfigurationError
from repro.fs.cache import CachePage
from repro.fs.ondisk import Superblock, CorruptStructure
from repro.fs.types import BLOCK_SIZE, SECTORS_PER_BLOCK
from repro.fs.ufs import UFS
from repro.fs.writeback import AdvFSPolicy
from repro.util.checksum import fletcher32

JOURNAL_HEADER_MAGIC = 0x414C4F47  # "ALOG"
RECORD_MAGIC = 0x4A524543  # "JREC"
_HEADER_FMT = struct.Struct("<IIQ")  # magic, epoch, committed_seq
_RECORD_FMT = struct.Struct("<IIQIIII")
# magic, epoch, seq, block_no, offset, length, checksum
SECTOR = 512


def _record_sectors(length: int) -> int:
    """Header sector plus sector-padded payload."""
    return 1 + -(-length // SECTOR)


class AdvFS(UFS):
    """UFS with journaled metadata."""

    fs_type = "advfs"

    def __init__(self, kernel, dev: int, policy=None) -> None:
        super().__init__(kernel, dev, policy or AdvFSPolicy())
        self._epoch = 1
        self._seq = 0
        self._cursor_sector = 0  # relative to the record area

    # -- geometry -----------------------------------------------------------

    def _record_area_start(self) -> int:
        return (self.sb.journal_start + 1) * SECTORS_PER_BLOCK

    def _record_area_sectors(self) -> int:
        return (self.sb.journal_blocks - 1) * SECTORS_PER_BLOCK

    # -- mount ---------------------------------------------------------------

    def mount(self) -> None:
        super().mount()
        if not self.sb.journal_blocks:
            raise ConfigurationError("AdvFS requires a journal region (journal_blocks > 0)")
        header = self.disk.peek(self.sb.journal_start * SECTORS_PER_BLOCK, 1)
        magic, epoch, _seq = _HEADER_FMT.unpack(header[: _HEADER_FMT.size])
        self._epoch = (epoch + 1) if magic == JOURNAL_HEADER_MAGIC else 1
        self._seq = 0
        self._cursor_sector = 0
        self._write_journal_header(sync=True)

    def _write_journal_header(self, *, sync: bool) -> None:
        header = _HEADER_FMT.pack(JOURNAL_HEADER_MAGIC, self._epoch, self._seq)
        self.disk.write(
            self.sb.journal_start * SECTORS_PER_BLOCK,
            header + b"\x00" * (BLOCK_SIZE - len(header)),
            sync=sync,
        )

    # -- journaling (called by AdvFSPolicy) ----------------------------------------

    def journal_metadata(self, page: CachePage) -> None:
        """Append this page's recent extents to the log (asynchronously)."""
        if page.disk_block is None:
            raise ConfigurationError("journaling a page with no disk placement")
        extents = page.journal_extents or [(0, BLOCK_SIZE)]
        page.journal_extents = []
        # Coalesce into one covering extent per page per operation — the
        # logical-record granularity of a real journal.
        start = min(off for off, _ in extents)
        end = max(off + length for off, length in extents)
        length = end - start
        if self._cursor_sector + _record_sectors(length) > self._record_area_sectors():
            self.journal_checkpoint()
        payload = self.kernel.memory.read(
            page.pfn * BLOCK_SIZE + start, length
        )
        self._seq += 1
        header = _RECORD_FMT.pack(
            RECORD_MAGIC,
            self._epoch,
            self._seq,
            page.disk_block,
            start,
            length,
            fletcher32(payload),
        )
        padded = payload + b"\x00" * (-len(payload) % SECTOR)
        record = header + b"\x00" * (SECTOR - _RECORD_FMT.size) + padded
        self.disk.write(
            self._record_area_start() + self._cursor_sector, record, sync=False
        )
        self._cursor_sector += _record_sectors(length)

    def journal_commit(self) -> None:
        """Force the log to disk (fsync semantics for metadata)."""
        self.disk.drain()

    def journal_checkpoint(self) -> None:
        """Write dirty metadata in place and truncate the log."""
        self.flush_metadata(sync=False)
        self._epoch += 1
        self._seq = 0
        self._cursor_sector = 0
        self._write_journal_header(sync=False)


def advfs_recover(disk) -> int:
    """Post-crash journal replay (offline; run before fsck).

    Returns the number of records applied.
    """
    try:
        sb = Superblock.from_bytes(disk.peek(0, SECTORS_PER_BLOCK))
    except CorruptStructure:
        return 0  # fsck will deal with the superblock first
    if not sb.journal_blocks:
        return 0
    header = disk.peek(sb.journal_start * SECTORS_PER_BLOCK, 1)
    magic, epoch, _ = _HEADER_FMT.unpack(header[: _HEADER_FMT.size])
    if magic != JOURNAL_HEADER_MAGIC:
        return 0
    area_start = (sb.journal_start + 1) * SECTORS_PER_BLOCK
    area_sectors = (sb.journal_blocks - 1) * SECTORS_PER_BLOCK
    applied = 0
    expected_seq = 1
    cursor = 0
    while cursor + 1 <= area_sectors:
        raw_header = disk.peek(area_start + cursor, 1)
        fields = _RECORD_FMT.unpack(raw_header[: _RECORD_FMT.size])
        rec_magic, rec_epoch, seq, block_no, offset, length, checksum = fields
        if (
            rec_magic != RECORD_MAGIC
            or rec_epoch != epoch
            or seq != expected_seq
            or length == 0
            or length > BLOCK_SIZE
            or offset + length > BLOCK_SIZE
            or not 0 <= block_no < sb.total_blocks
        ):
            break  # end of valid log
        payload_sectors = -(-length // SECTOR)
        if cursor + 1 + payload_sectors > area_sectors:
            break
        payload = disk.peek(area_start + cursor + 1, payload_sectors)[:length]
        if fletcher32(payload) != checksum:
            break  # torn record: the log ends here
        block = bytearray(disk.peek(block_no * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK))
        block[offset : offset + length] = payload
        disk.poke(block_no * SECTORS_PER_BLOCK, bytes(block))
        applied += 1
        expected_seq += 1
        cursor += 1 + payload_sectors
    return applied
