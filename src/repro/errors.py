"""Exception hierarchy shared across the whole simulation.

The hierarchy mirrors the failure taxonomy of the Rio paper:

* :class:`MachineCheck` — hardware-detected faults (illegal addresses).  The
  paper observes that on a 64-bit machine "most errors are first detected by
  issuing an illegal address"; in the simulation these surface as machine
  checks raised by the MMU.
* :class:`ProtectionTrap` — an attempted store to a write-protected file
  cache page.  This is Rio's protection mechanism firing; the system is
  halted, which the paper shows makes memory *safer* than a write-through
  file cache (the trap stops corrupt state from propagating to disk).
* :class:`KernelPanic` — software consistency (sanity) check failures, the
  "multitude of consistency checks present in a production operating system"
  credited for memory's surprising crash safety.
* :class:`WatchdogTimeout` — the interpreter/scheduler watchdog; the paper
  discards runs in which the system survives ten minutes after injection.

All of these derive from :class:`SystemCrash`, the signal that the simulated
machine has gone down and recovery (cold or warm reboot) must begin.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """A simulation component was configured inconsistently."""


class SystemCrash(ReproError):
    """The simulated operating system has crashed.

    Attributes
    ----------
    reason:
        Human-readable description of what brought the system down.
    """

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or self.__class__.__name__)
        self.reason = reason or self.__class__.__name__


class MachineCheck(SystemCrash):
    """Hardware-detected fault, e.g. a load/store to an illegal address."""


class ProtectionTrap(SystemCrash):
    """A store hit a write-protected page (Rio's protection mechanism).

    Rio halts the system on such a trap rather than letting the wild store
    proceed; the trap is therefore modelled as a crash, but one that is
    recorded separately because each trap marks a corruption *prevented*.
    """

    def __init__(self, reason: str = "", address: int | None = None) -> None:
        super().__init__(reason)
        self.address = address


class KernelPanic(SystemCrash):
    """A kernel consistency (sanity) check failed.

    ``code`` is the numeric error code of the failed check (the immediate
    of an ISA ``PANIC`` instruction), when one exists — reliability
    campaigns bucket panics by it instead of parsing message strings.
    """

    def __init__(self, reason: str = "", code: int | None = None) -> None:
        super().__init__(reason)
        self.code = code


class WatchdogTimeout(SystemCrash):
    """The machine appeared hung (e.g. an injected fault created a loop)."""


class IllegalInstruction(SystemCrash):
    """The interpreter decoded an instruction word it cannot execute."""


class CrashedMachineError(ReproError):
    """An operation was attempted on a machine that has already crashed."""


class FileSystemError(ReproError):
    """Base class for POSIX-flavoured file system errors."""

    errno_name = "EIO"


class FileNotFound(FileSystemError):
    errno_name = "ENOENT"


class FileExists(FileSystemError):
    errno_name = "EEXIST"


class NotADirectory(FileSystemError):
    errno_name = "ENOTDIR"


class IsADirectory(FileSystemError):
    errno_name = "EISDIR"


class DirectoryNotEmpty(FileSystemError):
    errno_name = "ENOTEMPTY"


class NoSpace(FileSystemError):
    errno_name = "ENOSPC"


class OutOfMemory(FileSystemError):
    """A kernel memory grant (e.g. a buffer-cache page) was denied.

    Only the chaos ``fail_alloc`` capability raises this today; the real
    allocator blocks or evicts instead.  Raised *before* any state
    changes, so a denied request leaves the cache untouched.
    """

    errno_name = "ENOMEM"


class InvalidArgument(FileSystemError):
    errno_name = "EINVAL"


class BadFileDescriptor(FileSystemError):
    errno_name = "EBADF"


class CrossDevice(FileSystemError):
    errno_name = "EXDEV"
