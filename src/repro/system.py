"""System assembly: build a whole simulated workstation in one call.

A :class:`System` owns the machine, the kernel, the disks (root + swap),
the file system, the VFS and (optionally) the Rio file cache, and knows
how to take the stack through the full crash lifecycle:

    boot -> run workload -> crash -> reboot (warm or cold) -> recovery

``System.reboot`` performs the paper's recovery sequence in order: memory
dump + registry-driven metadata restore (Rio), journal replay (AdvFS),
fsck, kernel boot, mount, and the user-level UBC restore (Rio).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core import RioConfig, RioFileCache
from repro.core.warm_reboot import (
    WarmRebootReport,
    dump_and_recover_metadata,
    restore_ubc,
)
from repro.disk import DiskParameters, SimulatedDisk, SwapPartition
from repro.errors import ConfigurationError
from repro.fs.advfs import AdvFS, advfs_recover
from repro.fs.fsck import FsckReport, fsck
from repro.fs.mfs import MemoryFileSystem
from repro.fs.types import SECTORS_PER_BLOCK
from repro.fs.ufs import UFS, UFSParams
from repro.fs.writeback import make_policy
from repro.hw import Machine, MachineConfig
from repro.kernel import Kernel, KernelConfig
from repro.kernel.syscalls import VFS

ROOT_DEV = 0


@dataclass
class SystemSpec:
    """Everything needed to build a system under test."""

    #: "ufs" | "advfs" | "mfs"
    fs_type: str = "ufs"
    #: Write policy name (see repro.fs.writeback); ignored for mfs.
    policy: str = "ufs"
    #: Rio configuration, or None for a plain disk-based system.
    rio: Optional[RioConfig] = None
    machine: MachineConfig = field(default_factory=MachineConfig)
    kernel: KernelConfig = field(default_factory=KernelConfig)
    disk: DiskParameters = field(default_factory=DiskParameters)
    #: Root file system size in 8 KB blocks.
    fs_blocks: int = 1024
    inode_blocks: int = 8
    journal_blocks: int = 32
    #: Mount an additional memory file system at this path prefix
    #: (Table 2's MFS row: source tree on disk, benchmark target in RAM).
    mfs_mount: Optional[str] = None
    #: Build a Phoenix-style checkpointing cache instead of Rio (the
    #: related-work comparison of section 6); implies the rio policy.
    phoenix: bool = False
    #: Tiered backing store behind the root disk: "local" |
    #: "objectstore" | "tiered" (see :mod:`repro.backend`), or None for
    #: the classic single-tier stack (zero behavior change).
    backend: Optional[str] = None
    #: Seed of the backend's latency/failure model.
    backend_seed: int = 0

    def describe(self) -> str:
        rio = "none"
        if self.rio is not None:
            rio = f"rio({self.rio.protection.value})"
        return f"{self.fs_type}/{self.policy}/{rio}"


@dataclass
class RebootReport:
    """What happened during one reboot."""

    warm: Optional[WarmRebootReport] = None
    fsck: Optional[FsckReport] = None
    journal_records_applied: int = 0
    cold: bool = False
    #: Remote-tier reconcile that ran after the local fsck (a
    #: :class:`~repro.backend.fsck_remote.RemoteFsckReport`), or None
    #: when the system has no backing store.
    remote: Optional[object] = None


class System:
    """A fully assembled simulated workstation."""

    def __init__(self, spec: SystemSpec) -> None:
        self.spec = spec
        self.machine = Machine(replace(spec.machine))
        self.disk: Optional[SimulatedDisk] = None
        self.swap: Optional[SwapPartition] = None
        if spec.fs_type != "mfs":
            self.disk = SimulatedDisk(
                "rz0",
                spec.fs_blocks * SECTORS_PER_BLOCK,
                replace(spec.disk),
            )
            self.machine.attach_disk("rz0", self.disk)
            swap_sectors = (
                spec.machine.memory_bytes // 512 + 2 * SECTORS_PER_BLOCK
            )
            swap_disk = SimulatedDisk("rz1", swap_sectors, replace(spec.disk))
            self.machine.attach_disk("rz1", swap_disk)
            self.swap = SwapPartition(swap_disk, 0, swap_sectors)
            UFS.mkfs(
                self.disk,
                UFSParams(
                    total_blocks=spec.fs_blocks,
                    inode_blocks=spec.inode_blocks,
                    journal_blocks=spec.journal_blocks if spec.fs_type == "advfs" else 0,
                ),
            )
        self.kernel: Optional[Kernel] = None
        self.rio: Optional[RioFileCache] = None
        self.fs = None
        self.vfs: Optional[VFS] = None
        #: Tiered backing store behind the root disk, or None (see
        #: :meth:`install_backend`).
        self.backing = None
        if spec.backend is not None and self.disk is not None:
            from repro.backend import make_backing_store

            self.install_backend(
                make_backing_store(
                    spec.backend,
                    disk=self.disk,
                    clock=self.machine.clock,
                    seed=spec.backend_seed,
                )
            )
        #: Callables run at the end of every reboot (see
        #: :meth:`add_reboot_hook`); services layered on the system use
        #: them to reconstruct state the reboot invalidated.
        self._reboot_hooks: list = []
        #: Chaos capability registry (see :meth:`install_chaos`), or None.
        self.chaos = None
        self._boot_stack(first=True)

    # -- boot ------------------------------------------------------------

    def _boot_stack(self, *, first: bool) -> None:
        """Boot a kernel over the (possibly crash-surviving) machine."""
        spec = self.spec
        self.kernel = Kernel(self.machine, replace(spec.kernel))
        # Chaos survives warm reboots: the registry lives on the System,
        # and every freshly booted kernel gets re-pointed at it.
        self.kernel.chaos = getattr(self, "chaos", None)
        # So does the backing store: the remote tier outlives the
        # machine (that is the point), so each new kernel is re-pointed
        # at the same store object.
        self.kernel.backing = getattr(self, "backing", None)
        guard = None
        self.phoenix = None
        if spec.phoenix:
            from repro.extensions.phoenix import PhoenixFileCache

            self.phoenix = PhoenixFileCache(self.kernel)
            self.rio = None
            guard = self.phoenix.guard
        elif spec.rio is not None:
            self.rio = RioFileCache(self.kernel, spec.rio)
            guard = self.rio.guard
        else:
            self.rio = None
        self.kernel.init_caches(guard)
        if spec.fs_type == "mfs":
            self.fs = MemoryFileSystem(self.kernel, ROOT_DEV)
        else:
            self.kernel.attach_block_device(ROOT_DEV, self.disk)
            policy = make_policy(spec.policy)
            if spec.fs_type == "advfs":
                self.fs = AdvFS(self.kernel, ROOT_DEV, policy)
            elif spec.fs_type == "ufs":
                self.fs = UFS(self.kernel, ROOT_DEV, policy)
            else:
                raise ConfigurationError(f"unknown fs type {spec.fs_type!r}")
        self.fs.mount()
        mounts = {}
        if spec.mfs_mount and spec.fs_type != "mfs":
            mfs = MemoryFileSystem(self.kernel, dev=ROOT_DEV + 1)
            mfs.mount()
            mounts[spec.mfs_mount] = mfs
        self.vfs = VFS(self.kernel, self.fs, mounts)

    # -- crash and reboot ----------------------------------------------------

    def crash(self, reason: str = "forced crash", kind: str = "forced") -> None:
        """Force the machine down (the fault injector usually gets there
        first via the kernel's go_down path)."""
        self.machine.crash(reason, kind=kind)

    def reboot(self, *, preserve_memory: bool = True) -> RebootReport:
        """Reboot after a crash, running the configured recovery chain."""
        report = RebootReport(cold=not preserve_memory)
        self.machine.reset(preserve_memory=preserve_memory)
        if self.backing is not None:
            # The upload queue and remote-map mirrors were kernel heap:
            # the crash destroyed them with everything else.
            self.backing.on_machine_crash()

        image = entries = None
        warm_enabled = (
            (self.spec.phoenix or (self.spec.rio is not None and self.spec.rio.warm_reboot))
            and preserve_memory
            and self.swap is not None
        )
        if warm_enabled:
            # Step 1 (before any kernel state is rebuilt): dump memory to
            # swap and restore metadata to disk from the registry.
            image, entries, warm = dump_and_recover_metadata(
                self.machine, self.swap, {ROOT_DEV: self.disk}
            )
            report.warm = warm

        if self.spec.fs_type == "advfs":
            report.journal_records_applied = advfs_recover(self.disk)
        if self.disk is not None:
            report.fsck = fsck(self.disk)
        if self.backing is not None:
            # Remote-tier fsck follows the local one: the surviving
            # local disk is the authority, and the object store is
            # reconciled to mirror it before any remote read is trusted
            # (s3ql's mount-requires-fsck rule).  An outage defers the
            # reconcile; dirty uploads simply remain pending.
            from repro.backend.fsck_remote import fsck_remote

            report.remote = fsck_remote(self.backing, batch=True)

        self._boot_stack(first=False)

        if warm_enabled and report.warm is not None and report.warm.registry_found:
            # Step 2: the user-level restore of dirty UBC pages.
            restore_ubc(self.fs, image, entries, report.warm)

        # Last: let layered services rebuild state the reboot destroyed
        # (the VFS fd table does not survive _boot_stack).  Hooks run in
        # registration order, after the cache contents are restored.
        for hook in self._reboot_hooks:
            hook(self, report)
        return report

    def install_chaos(self, registry) -> None:
        """Attach a :class:`~repro.faults.capabilities.ChaosRegistry`.

        Points the kernel (cache/allocator hooks) and every disk
        (``slow_io``) at the registry; :meth:`_boot_stack` re-attaches
        the kernel side on every reboot, and the disks persist across
        reboots, so one installation covers the system's whole lifetime.
        """
        self.chaos = registry
        if self.kernel is not None:
            self.kernel.chaos = registry
        for disk in self.machine.disks.values():
            disk.chaos = registry
        if self.backing is not None:
            self.backing.remote.chaos = registry

    def install_backend(self, store) -> None:
        """Attach a :class:`~repro.backend.tiered.TieredStore`.

        Points the store at the machine clock and flight recorder (both
        survive machine resets, so one installation covers every
        reboot), gives the kernel its upload hook, and forwards any
        already-installed chaos registry to the remote tier.
        """
        self.backing = store
        store.attach(self.machine.clock)
        store.recorder = self.machine.recorder
        if getattr(self, "chaos", None) is not None:
            store.remote.chaos = self.chaos
        if self.kernel is not None:
            self.kernel.backing = store

    def add_reboot_hook(self, hook) -> None:
        """Register ``hook(system, report)`` to run at the end of every
        :meth:`reboot`, after recovery completes — the file service uses
        this to re-bind client sessions onto the rebuilt VFS."""
        if hook not in self._reboot_hooks:
            self._reboot_hooks.append(hook)

    # -- conveniences ------------------------------------------------------------

    @property
    def clock(self):
        return self.machine.clock

    def drain_disks(self) -> None:
        for disk in self.machine.disks.values():
            disk.drain()

    def enable_reliability_writes(self) -> None:
        """Administrative toggle (the paper's footnote 1): "a way for a
        system administrator to easily enable and disable reliability disk
        writes for machine maintenance or extended power outages."

        Flushes everything to disk now and switches to a delayed-write
        policy so data keeps reaching the disk, making it safe to power
        the machine off (memory contents lost)."""
        from repro.fs.writeback import make_policy

        if self.disk is None:
            return
        self.fs.flush_data(sync=True)
        self.fs.flush_metadata(sync=True)
        self.drain_disks()
        self.fs.policy = make_policy("ufs_delayed")
        self.kernel.reliability_writes_off = False
        self.kernel.config.panic_syncs_dirty = True

    def disable_reliability_writes(self) -> None:
        """Back to normal Rio operation: memory is the stable store."""
        from repro.fs.writeback import make_policy

        if self.disk is None or self.spec.rio is None:
            return
        self.fs.policy = make_policy("rio")
        self.kernel.reliability_writes_off = True
        self.kernel.config.panic_syncs_dirty = False

    def drop_caches(self) -> None:
        """Administrative flush-and-invalidate of both caches (no-op for
        MFS).  Used by benchmarks to start a timed phase cold, the way the
        paper's runs started with the source tree on disk only."""
        if self.disk is None:
            return
        kernel = self.kernel
        charged = kernel.config.charge_time
        kernel.config.charge_time = False
        kernel.klib.charge_time = False
        try:
            self.fs.flush_data(sync=True)
            self.fs.flush_metadata(sync=True)
            self.drain_disks()
            for cache in (kernel.ubc, kernel.buffer_cache):
                for page in list(cache.pages.values()):
                    cache.drop(page)
        finally:
            kernel.config.charge_time = charged
            kernel.klib.charge_time = charged


def build_system(spec: SystemSpec | None = None, **overrides) -> System:
    """Build a system from a spec (or keyword overrides of the default)."""
    if spec is None:
        spec = SystemSpec(**overrides)
    elif overrides:
        spec = replace(spec, **overrides)
    return System(spec)
