"""The exhaustive crash-point explorer.

The fault campaigns sample the crash space: each trial injects one
random fault and sees where the system lands.  The explorer *sweeps* it:

1. **Enumerate** — run the workload once, to completion, under the
   flight recorder and extract every store/cache-write/writeback-flush/
   shadow-flip/registry-update/ack boundary from the stream
   (:mod:`repro.explore.boundaries`).
2. **Crash everywhere** — for each boundary, re-run the workload
   deterministically with a one-shot crash armed at that event's
   sequence number (:meth:`FlightRecorder.arm_crash`): the machine dies
   the instant the boundary event is recorded, before the store it
   announces lands.
3. **Check the spec** — warm-reboot, recover, and hold the recovered
   system to the declared crash-consistency spec
   (:mod:`repro.explore.spec`).  Any violation is a typed
   counterexample replayable by ``(seed, event_index)``.

Per-boundary trials are pure functions of ``(ExploreConfig,
Boundary)``, so they fan across cores through the campaign engine's
:class:`~repro.reliability.engine.ParallelMap` with **no** sequential
coupling: the keyed verdict map — and therefore the whole report and
its digest — is bit-identical at any ``--jobs`` and on either
execution engine.  Finished trials checkpoint into a
:class:`~repro.reliability.journal.CampaignJournal` keyed
``(workload, "boundary", event_index)`` so an interrupted sweep
resumes where it stopped.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import SystemCrash
from repro.obs.events import events_digest
from repro.obs.forensics import build_forensic_report, format_forensic_report
from repro.reliability.engine import ParallelMap
from repro.reliability.journal import CampaignJournal

from repro.explore.boundaries import Boundary, boundary_census, enumerate_boundaries
from repro.explore.spec import SpecViolation, default_spec
from repro.explore.workloads import ExploreConfig, build_run


class ExploreError(RuntimeError):
    """The exploration could not produce a trustworthy sweep."""


# -- enumeration -------------------------------------------------------------


@dataclass
class EnumerationResult:
    """One clean workload run's serialized stream and its crash points."""

    events: List[Dict[str, Any]]
    digest: str
    boundaries: List[Boundary]


def run_enumeration(config: ExploreConfig) -> EnumerationResult:
    """Run the workload once, cleanly, and enumerate every boundary."""
    run = build_run(config)
    rec = run.recorder
    rec.start(cap=config.event_cap)
    run.execute()
    rec.stop()
    if run.crashed or not run.completed:
        raise ExploreError(
            f"enumeration run of workload {config.workload!r} did not complete "
            f"cleanly (crashed={run.crashed}); the sweep needs a crash-free "
            "baseline to enumerate boundaries from"
        )
    if rec.dropped:
        raise ExploreError(
            f"enumeration stream lost {rec.dropped} event(s) to ring "
            f"eviction; raise event_cap (currently {config.event_cap}) so "
            "boundary indices cover the whole run"
        )
    events = rec.to_json_list()
    return EnumerationResult(
        events=events,
        digest=events_digest(events),
        boundaries=enumerate_boundaries(events),
    )


# -- one boundary trial ------------------------------------------------------


@dataclass
class BoundaryVerdict:
    """What crashing at one boundary did to the spec."""

    boundary: Boundary
    #: The armed crash fired at exactly the enumerated event.
    fired: bool
    #: The workload observed the crash (traffic runs may still complete:
    #: the service absorbs the crash and the load finishes afterwards).
    crashed: bool
    completed: bool
    violations: List[SpecViolation]
    #: sha256 of the post-recovery disk image (dissect ran).
    image_sha256: Optional[str] = None
    #: Dumped counterexample artifacts (host paths; excluded from the
    #: canonical form so the report digest is location-independent).
    artifact_image: Optional[str] = None
    artifact_report: Optional[str] = None

    @property
    def ok(self) -> bool:
        """The crash fired and the spec held."""
        return self.fired and not self.violations

    def canonical_json_dict(self) -> Dict[str, Any]:
        """The digest-stable form: no host paths, sorted-key friendly."""
        return {
            "boundary": self.boundary.to_json_dict(),
            "fired": self.fired,
            "crashed": self.crashed,
            "completed": self.completed,
            "violations": [v.to_json_dict() for v in self.violations],
            "image_sha256": self.image_sha256,
        }

    def to_json_dict(self) -> Dict[str, Any]:
        """Full wire form: canonical content plus artifact paths."""
        out = self.canonical_json_dict()
        out["artifact_image"] = self.artifact_image
        out["artifact_report"] = self.artifact_report
        return out

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "BoundaryVerdict":
        """Inverse of :meth:`to_json_dict`."""
        return cls(
            boundary=Boundary.from_json_dict(data["boundary"]),
            fired=data["fired"],
            crashed=data["crashed"],
            completed=data["completed"],
            violations=[
                SpecViolation.from_json_dict(v) for v in data["violations"]
            ],
            image_sha256=data.get("image_sha256"),
            artifact_image=data.get("artifact_image"),
            artifact_report=data.get("artifact_report"),
        )


def run_boundary_trial(
    config: ExploreConfig,
    boundary: Boundary,
    artifact_dir: Optional[str] = None,
) -> BoundaryVerdict:
    """Re-run the workload, crash at ``boundary``, check the spec.

    Raises :class:`ExploreError` on a determinism breach — the armed
    event never re-occurring, or re-occurring as a different
    ``kind/op`` than the enumeration recorded.
    """
    run = build_run(config)
    rec = run.recorder
    rec.start(cap=config.event_cap)
    observed: Dict[str, str] = {}

    def crash_hook(event) -> None:
        observed["kind"], observed["op"] = event.kind, event.op
        raise SystemCrash(
            f"explorer: armed crash at boundary {boundary.index} "
            f"({event.kind}/{event.op})"
        )

    rec.arm_crash(boundary.index, crash_hook)
    try:
        run.execute()
    finally:
        rec.disarm_crash()
        rec.stop()

    if not observed:
        raise ExploreError(
            f"determinism breach: boundary {boundary.index} "
            f"({boundary.key()}) enumerated but never re-occurred on replay"
        )
    if (observed["kind"], observed["op"]) != (boundary.kind, boundary.op):
        raise ExploreError(
            f"determinism breach: event {boundary.index} was "
            f"{boundary.key()} at enumeration but "
            f"{observed['kind']}/{observed['op']} on replay"
        )

    ctx = run.context(boundary.index, boundary.kind, boundary.op)
    violations = default_spec().check(ctx)
    verdict = BoundaryVerdict(
        boundary=boundary,
        fired=True,
        crashed=run.crashed,
        completed=run.completed,
        violations=violations,
        image_sha256=run.dissect.image_sha256 if run.dissect is not None else None,
    )
    if violations and artifact_dir:
        _dump_counterexample(config, boundary, run, rec, verdict, artifact_dir)
    return verdict


def _dump_counterexample(
    config: ExploreConfig, boundary: Boundary, run, rec, verdict, artifact_dir: str
) -> None:
    """Drop the violating trial's image + forensics next to the report.

    The image is a standard ``RIOIMG1`` container (``repro dissect``
    reads it back); the text report is the flight-recorder forensic
    chain with the spec violations appended.
    """
    os.makedirs(artifact_dir, exist_ok=True)
    stem = f"ce_{config.workload}_seed{config.seed}_ev{boundary.index}"
    if run.image is not None:
        image_path = os.path.join(artifact_dir, stem + ".img")
        dump_meta = {
            "workload": config.workload,
            "system": config.system,
            "seed": config.seed,
            "event_index": boundary.index,
            "boundary": boundary.key(),
        }
        from repro.fs.dissect import dump_image

        dump_image(image_path, run.image, meta=dump_meta)
        verdict.artifact_image = image_path
    warm = getattr(run.reboot, "warm", None)
    synthetic_result = {
        "config": {
            "system": config.system,
            "fault_type": f"boundary:{boundary.key()}",
            "seed": config.seed,
        },
        "recovery_failed": run.recovery_error is not None,
        "checksum_mismatches": len(
            getattr(warm, "checksum_mismatches", None) or []
        ),
        "image_sha256": verdict.image_sha256,
        "dissect_findings": [
            f.to_json_dict() for f in run.dissect.findings
        ]
        if run.dissect is not None
        else [],
        "divergence": run.divergence.to_json_dict()
        if run.divergence is not None
        else None,
    }
    forensic = build_forensic_report(synthetic_result, rec.to_json_list())
    lines = [
        format_forensic_report(forensic),
        "",
        f"spec violations at boundary {boundary.index} ({boundary.key()}):",
    ]
    for violation in verdict.violations:
        lines.append(f"  - [{violation.clause}] {violation.detail}")
    lines.append("replay: repro explore " + replay_command(config, boundary.index))
    report_path = os.path.join(artifact_dir, stem + ".txt")
    with open(report_path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    verdict.artifact_report = report_path


def run_trial_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """:class:`ParallelMap` entry point — JSON dict in, JSON dict out."""
    config = ExploreConfig.from_json_dict(payload["config"])
    boundary = Boundary.from_json_dict(payload["boundary"])
    verdict = run_boundary_trial(
        config, boundary, artifact_dir=payload.get("artifact_dir")
    )
    return verdict.to_json_dict()


# -- the sweep ---------------------------------------------------------------


@dataclass
class ExploreReport:
    """The outcome of one exhaustive sweep."""

    config: ExploreConfig
    total_events: int
    enumeration_digest: str
    #: Enumerated boundaries per ``kind/op`` bucket.
    census: Dict[str, int]
    boundaries_total: int
    #: One verdict per crashed boundary, in event-index order.
    verdicts: List[BoundaryVerdict]
    #: Boundary keys given up on after repeated worker deaths.
    quarantined: List[Any] = field(default_factory=list)
    executed: int = 0
    from_checkpoint: int = 0

    @property
    def crashed_count(self) -> int:
        """Boundaries whose armed crash actually fired."""
        return sum(1 for v in self.verdicts if v.fired)

    @property
    def coverage_percent(self) -> float:
        """Crashed boundaries as a percentage of those enumerated."""
        if self.boundaries_total == 0:
            return 100.0
        return 100.0 * self.crashed_count / self.boundaries_total

    @property
    def complete(self) -> bool:
        """Every enumerated boundary produced a fired-crash verdict."""
        return self.crashed_count == self.boundaries_total

    @property
    def violations(self) -> List[SpecViolation]:
        """Every spec violation across all verdicts, boundary order."""
        out: List[SpecViolation] = []
        for verdict in self.verdicts:
            out.extend(verdict.violations)
        return out

    @property
    def counterexamples(self) -> List[BoundaryVerdict]:
        """The verdicts that violated at least one clause."""
        return [v for v in self.verdicts if v.violations]

    def breakdown(self) -> Dict[str, Dict[str, int]]:
        """Per ``kind/op`` bucket: enumerated / crashed / violations."""
        out: Dict[str, Dict[str, int]] = {
            key: {"enumerated": count, "crashed": 0, "violations": 0}
            for key, count in self.census.items()
        }
        for verdict in self.verdicts:
            bucket = out.setdefault(
                verdict.boundary.key(),
                {"enumerated": 0, "crashed": 0, "violations": 0},
            )
            if verdict.fired:
                bucket["crashed"] += 1
            bucket["violations"] += len(verdict.violations)
        return out

    def report_digest(self) -> str:
        """sha256 over the sweep's canonical content.

        Covers the config fingerprint, the enumeration stream digest and
        every verdict's canonical form — but not host paths, job counts
        or checkpoint bookkeeping, so serial and parallel sweeps (and
        both execution engines) produce the same digest.
        """
        body = {
            "config": self.config.fingerprint(),
            "enumeration_digest": self.enumeration_digest,
            "total_events": self.total_events,
            "census": self.census,
            "verdicts": [v.canonical_json_dict() for v in self.verdicts],
        }
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def to_json_dict(self) -> Dict[str, Any]:
        """Full machine-readable report (the ``--json`` output)."""
        return {
            "config": self.config.to_json_dict(),
            "total_events": self.total_events,
            "enumeration_digest": self.enumeration_digest,
            "census": self.census,
            "boundaries_total": self.boundaries_total,
            "coverage_percent": self.coverage_percent,
            "complete": self.complete,
            "breakdown": self.breakdown(),
            "verdicts": [v.to_json_dict() for v in self.verdicts],
            "quarantined": [list(key) for key in self.quarantined],
            "executed": self.executed,
            "from_checkpoint": self.from_checkpoint,
            "report_digest": self.report_digest(),
        }


def explore(
    config: ExploreConfig,
    *,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    artifact_dir: Optional[str] = None,
    progress=None,
) -> ExploreReport:
    """Enumerate every boundary, crash at each, check the spec.

    ``jobs`` fans per-boundary trials across worker processes (1 =
    in-process); ``checkpoint`` journals finished trials for resume;
    ``artifact_dir`` receives counterexample images + forensics.
    """
    enumeration = run_enumeration(config)
    boundaries = enumeration.boundaries
    if artifact_dir:
        os.makedirs(artifact_dir, exist_ok=True)

    journal: Optional[CampaignJournal] = None
    cache: Dict[Any, Any] = {}
    if checkpoint:
        journal = CampaignJournal(
            checkpoint, {"explore": 1, "config": config.fingerprint()}
        )
        cache = journal.load()  # raises CampaignResumeError on mismatch
        journal.open_for_append()

    verdict_dicts: Dict[int, Dict[str, Any]] = {}
    from_checkpoint = 0
    tasks: List[Any] = []
    for boundary in boundaries:
        key = (config.workload, "boundary", boundary.index)
        entry = cache.pop(key, None)
        if entry is not None:
            seed, result_dict = entry
            if seed == config.seed and result_dict is not None:
                verdict_dicts[boundary.index] = result_dict
                from_checkpoint += 1
                continue
        tasks.append(
            (
                key,
                {
                    "config": config.to_json_dict(),
                    "boundary": boundary.to_json_dict(),
                    "artifact_dir": artifact_dir,
                },
            )
        )

    pmap = ParallelMap(
        "repro.explore.explorer:run_trial_task", jobs=jobs, progress=progress
    )
    try:
        results = pmap.run(tasks) if tasks else {}
        for key in sorted(results, key=lambda k: k[2]):
            result_dict = results[key]
            if result_dict is None:
                continue  # quarantined after repeated worker deaths
            verdict_dicts[key[2]] = result_dict
            if journal is not None:
                journal.append_trial(key, config.seed, result_dict)
    finally:
        if journal is not None:
            journal.close()

    verdicts = [
        BoundaryVerdict.from_json_dict(verdict_dicts[index])
        for index in sorted(verdict_dicts)
    ]
    return ExploreReport(
        config=config,
        total_events=len(enumeration.events),
        enumeration_digest=enumeration.digest,
        census=boundary_census(boundaries),
        boundaries_total=len(boundaries),
        verdicts=verdicts,
        quarantined=list(pmap.stats.quarantined),
        executed=pmap.stats.executed,
        from_checkpoint=from_checkpoint,
    )


def replay(
    config: ExploreConfig,
    event_index: int,
    artifact_dir: Optional[str] = None,
) -> BoundaryVerdict:
    """Re-run exactly one ``(seed, event_index)`` counterexample.

    Enumerates first (cheap — one clean run) so the index is validated
    against the actual boundary list before the crash is armed.
    """
    enumeration = run_enumeration(config)
    boundary = next(
        (b for b in enumeration.boundaries if b.index == event_index), None
    )
    if boundary is None:
        indices = [b.index for b in enumeration.boundaries]
        near = [i for i in indices if abs(i - event_index) <= 10] or indices[:8]
        raise ExploreError(
            f"event {event_index} is not a boundary of workload "
            f"{config.workload!r} seed {config.seed} "
            f"({len(indices)} boundaries; nearby indices: {near})"
        )
    return run_boundary_trial(config, boundary, artifact_dir=artifact_dir)


# -- rendering ---------------------------------------------------------------


def replay_command(config: ExploreConfig, event_index: int) -> str:
    """The ``repro explore`` argument string that replays one
    counterexample — every non-default config knob spelled out, so the
    printed command is the complete replayable identity."""
    defaults = ExploreConfig()
    parts = [config.workload, f"--system {config.system}", f"--seed {config.seed}"]
    if config.ops != defaults.ops:
        parts.append(f"--ops {config.ops}")
    if config.clients != defaults.clients:
        parts.append(f"--clients {config.clients}")
    if config.ops_per_client != defaults.ops_per_client:
        parts.append(f"--ops-per-client {config.ops_per_client}")
    if config.plant_ack_bug:
        parts.append("--plant-ack-bug")
    parts.append(f"--replay {event_index}")
    return " ".join(parts)


def format_explore_report(report: ExploreReport) -> str:
    """Human-readable sweep summary (the ``repro explore`` output)."""
    config = report.config
    lines = [
        f"crash-point exploration: workload={config.workload} "
        f"system={config.system} seed={config.seed}",
        f"  events recorded: {report.total_events} "
        f"(stream digest {report.enumeration_digest[:16]})",
        f"  boundaries: {report.boundaries_total} across "
        f"{len(report.census)} kind(s)",
        f"  coverage: {report.crashed_count}/{report.boundaries_total} "
        f"boundaries crashed ({report.coverage_percent:.1f}%)"
        + ("" if report.complete else "  [INCOMPLETE]"),
        f"  trials: {report.executed} run, "
        f"{report.from_checkpoint} from checkpoint"
        + (f", {len(report.quarantined)} quarantined" if report.quarantined else ""),
        "  per-boundary-kind breakdown:",
    ]
    for key, bucket in sorted(report.breakdown().items()):
        lines.append(
            f"    {key:<18} {bucket['enumerated']:>4} enumerated, "
            f"{bucket['crashed']:>4} crashed, "
            f"{bucket['violations']:>3} violation(s)"
        )
    lines.append(
        "  spec clauses: " + ", ".join(default_spec().clause_ids())
    )
    violations = report.violations
    if not violations:
        lines.append("  violations: none — the spec held at every boundary")
    else:
        lines.append(f"  violations: {len(violations)}")
        shown = 0
        for verdict in report.counterexamples:
            for violation in verdict.violations:
                if shown >= 20:
                    break
                lines.append(
                    f"    event #{violation.event_index} "
                    f"({verdict.boundary.key()}): [{violation.clause}] "
                    f"{violation.detail}"
                )
                shown += 1
            if verdict.artifact_image:
                lines.append(f"      image:  {verdict.artifact_image}")
            if verdict.artifact_report:
                lines.append(f"      report: {verdict.artifact_report}")
        if len(violations) > shown:
            lines.append(f"    ... and {len(violations) - shown} more")
        first = report.counterexamples[0]
        lines.append(
            "  replay the first counterexample: repro explore "
            + replay_command(config, first.boundary.index)
        )
    lines.append(f"  report digest: {report.report_digest()}")
    return "\n".join(lines)
