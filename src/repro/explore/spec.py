"""The declared crash-consistency spec the explorer checks at every boundary.

The crash campaigns historically judged recovery with the ad-hoc
``_check_static_files`` probe (two pre-written copies compared after
reboot).  The explorer replaces that with a *declared*, composable spec
in the SquirrelFS tradition: a set of named clauses, each an
independently checkable predicate over one recovered-system context,
each reporting typed :class:`SpecViolation` records that name the exact
``(seed, event_index)`` crash point that produced them.

The default spec (:func:`default_spec`):

* **recovery-succeeds** — warm reboot + fsck + the durability audit all
  complete; fsck never declares the volume unrecoverable.
* **acked-data-durable** — every acknowledged operation (the promise
  ledger of :class:`repro.server.journal.AckJournal`) survives the
  crash: files hold exactly the acknowledged bytes, promised
  directories exist, promised absences stay absent.
* **metadata-atomic** — the recovered namespace is traversable: every
  directory reachable from the root lists and stats cleanly (a crash
  mid-update never leaves a half-written directory behind).
* **shadow-never-torn** — the warm reboot found no checksum-mismatched
  registry slots: a crash inside a shadow-page flip never exposes a
  torn page.
* **fsck-dissect-agree** — the independent on-disk verifier's second
  opinion agrees with fsck about the post-recovery image.
* **remote-tier-consistent** — with a tiered backing store: after
  recovery and reconcile, the image materialized from the object store
  *alone* mounts, passes the dissect second opinion, and reproduces
  every acknowledged operation (skipped when no backend is installed).

Each clause sees only the :class:`CrashContext` fields it declares an
interest in and skips (rather than fails) when a field is absent — a
context built from the basic workload has no service, a unit test's
context may have no live system at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import FileSystemError, NotADirectory

#: Directories visited per namespace walk before the walk declares a
#: cycle (the verifier's own bounded-walk discipline).
MAX_WALK_DIRS = 4096


@dataclass(frozen=True)
class SpecViolation:
    """One clause firing at one crash point."""

    clause: str
    detail: str
    #: The boundary's recorder sequence number — with the workload seed,
    #: the replayable identity of the counterexample.
    event_index: int
    seed: int
    workload: str

    def to_json_dict(self) -> Dict[str, Any]:
        """Wire form (verdict serialization, checkpoint journals)."""
        return {
            "clause": self.clause,
            "detail": self.detail,
            "event_index": self.event_index,
            "seed": self.seed,
            "workload": self.workload,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "SpecViolation":
        """Inverse of :meth:`to_json_dict`."""
        return cls(**data)


@dataclass
class CrashContext:
    """Everything one recovered trial exposes to the spec clauses."""

    workload: str
    seed: int
    event_index: int
    #: Boundary identity, for violation messages.
    boundary_kind: str = "?"
    boundary_op: str = "?"
    #: The recovered, live system (namespace walks); None in unit tests.
    system: Any = None
    #: The :class:`repro.system.RebootReport` of the crash recovery.
    reboot: Any = None
    #: Recovery died outright (reboot or audit raised): the description.
    recovery_error: Optional[str] = None
    #: Lost-acknowledgement descriptions from the durability audit(s).
    lost: List[str] = field(default_factory=list)
    #: The independent verifier's :class:`DissectReport` (or None).
    dissect: Any = None
    #: The fsck-vs-dissect :class:`DivergenceReport` (or None).
    divergence: Any = None
    #: The remote-tier :class:`~repro.backend.audit.RemoteCheck` (or
    #: None when the system has no backing store).
    remote: Any = None


class SpecClause:
    """One named predicate; subclasses override :meth:`check`."""

    clause_id = "?"

    def check(self, ctx: CrashContext) -> List[str]:
        """Return one detail string per violation (empty = clause holds)."""
        raise NotImplementedError

    def violations(self, ctx: CrashContext) -> List[SpecViolation]:
        """Wrap :meth:`check` details into typed violations."""
        return [
            SpecViolation(
                clause=self.clause_id,
                detail=detail,
                event_index=ctx.event_index,
                seed=ctx.seed,
                workload=ctx.workload,
            )
            for detail in self.check(ctx)
        ]


class RecoverySucceeds(SpecClause):
    """Recovery must complete and fsck must not give up."""

    clause_id = "recovery-succeeds"

    def check(self, ctx: CrashContext) -> List[str]:
        """Fires on a recovery error or an unrecoverable fsck verdict."""
        details: List[str] = []
        if ctx.recovery_error is not None:
            details.append(f"recovery failed: {ctx.recovery_error}")
        fsck = getattr(ctx.reboot, "fsck", None)
        if fsck is not None and fsck.unrecoverable:
            details.append("fsck declared the file system unrecoverable")
        return details


class AckedDataDurable(SpecClause):
    """No acknowledged operation may be lost to the crash."""

    clause_id = "acked-data-durable"

    def check(self, ctx: CrashContext) -> List[str]:
        """Fires once per lost acknowledgement the audit reported."""
        return [f"lost acknowledgement: {entry}" for entry in ctx.lost]


class MetadataAtomic(SpecClause):
    """The recovered namespace must be fully traversable."""

    clause_id = "metadata-atomic"

    def check(self, ctx: CrashContext) -> List[str]:
        """BFS-walks the recovered namespace; fires on any failed
        readdir/stat (and on a runaway walk past :data:`MAX_WALK_DIRS`)."""
        if ctx.system is None or getattr(ctx.system, "vfs", None) is None:
            return []
        vfs = ctx.system.vfs
        details: List[str] = []
        queue = ["/"]
        visited = 0
        while queue:
            path = queue.pop(0)
            visited += 1
            if visited > MAX_WALK_DIRS:
                details.append(
                    f"namespace walk exceeded {MAX_WALK_DIRS} directories "
                    "(cycle or runaway tree after recovery)"
                )
                break
            try:
                names = vfs.readdir(path)
            except FileSystemError as exc:
                details.append(f"readdir {path} failed after recovery: {exc}")
                continue
            for name in names:
                child = path.rstrip("/") + "/" + name
                try:
                    vfs.stat(child)
                except FileSystemError as exc:
                    details.append(f"stat {child} failed after recovery: {exc}")
                    continue
                try:
                    vfs.readdir(child)
                except NotADirectory:
                    continue  # a file: nothing further to walk
                except FileSystemError as exc:
                    details.append(f"readdir {child} failed after recovery: {exc}")
                    continue
                queue.append(child)
        return details


class ShadowPagesNeverTorn(SpecClause):
    """The warm reboot must never find a checksum-mismatched page."""

    clause_id = "shadow-never-torn"

    def check(self, ctx: CrashContext) -> List[str]:
        """Fires when the warm reboot saw checksum-mismatched slots."""
        warm = getattr(ctx.reboot, "warm", None)
        mismatches = getattr(warm, "checksum_mismatches", None) or []
        if not mismatches:
            return []
        slots = ", ".join(str(slot) for slot in mismatches)
        return [
            f"warm reboot found {len(mismatches)} torn page(s) "
            f"(registry slot(s) {slots})"
        ]


class FsckDissectAgree(SpecClause):
    """fsck and the independent verifier must agree about the image."""

    clause_id = "fsck-dissect-agree"

    def check(self, ctx: CrashContext) -> List[str]:
        """Fires once per divergence detail between the two judges."""
        divergence = ctx.divergence
        if divergence is None or divergence.agreed:
            return []
        return [f"fsck/dissect divergence: {reason}" for reason in divergence.details]


class RemoteTierConsistent(SpecClause):
    """After recovery, the remote tier alone must pay every ack.

    Judges the :class:`~repro.backend.audit.RemoteCheck`: the post-
    recovery reconcile must complete (a crash mid-upload legitimately
    leaves the object store behind the local disk — fsck-remote healing
    it from the local authority is correct operation, not a violation),
    and the image materialized from the object store alone must mount,
    agree with the dissect second opinion, and reproduce every
    acknowledged operation *the local disk still pays* — an ack the
    local authority itself lost (a UFS crash dropping unflushed writes)
    is :class:`AckedDataDurable`'s finding, and a remote tier that
    agrees with local about it is consistent, not divergent.  Skips
    when the trial has no backing store.
    """

    clause_id = "remote-tier-consistent"

    def check(self, ctx: CrashContext) -> List[str]:
        """Fires on audit errors, undeclared deferrals, lost acks over
        the materialized image, unreconciled findings, or divergence."""
        remote = ctx.remote
        if remote is None:
            return []
        details: List[str] = []
        if remote.error is not None:
            details.append(f"remote audit error: {remote.error}")
            return details
        if remote.deferred:
            details.append(
                "remote reconcile deferred outside a declared outage window"
            )
            return details
        reconcile = remote.reconcile
        if reconcile is not None and not reconcile.ok:
            details.append(
                "remote fsck left the tier unreconciled: "
                f"needs_batch={reconcile.needs_batch} "
                f"unrepaired={reconcile.unrepaired}"
            )
        # Audit entries lead with their identity ("file /a/b: ...");
        # skip losses the local audit reported too — the tiers agree.
        locally_lost = {entry.split(":", 1)[0] for entry in ctx.lost}
        for entry in remote.lost:
            if entry.split(":", 1)[0] in locally_lost:
                continue
            details.append(f"remote tier lost acknowledgement: {entry}")
        divergence = remote.divergence
        if divergence is not None and not divergence.agreed:
            details.extend(
                f"remote image fsck/dissect divergence: {reason}"
                for reason in divergence.details
            )
        return details


class CrashSpec:
    """A composable conjunction of spec clauses."""

    def __init__(self, clauses: List[SpecClause]) -> None:
        self.clauses = list(clauses)

    def clause_ids(self) -> List[str]:
        """The clause names, declaration order."""
        return [clause.clause_id for clause in self.clauses]

    def check(self, ctx: CrashContext) -> List[SpecViolation]:
        """Check every clause; returns all violations, clause order."""
        out: List[SpecViolation] = []
        for clause in self.clauses:
            out.extend(clause.violations(ctx))
        return out


def default_spec() -> CrashSpec:
    """The spec the explorer holds every crash point to."""
    return CrashSpec(
        [
            RecoverySucceeds(),
            AckedDataDurable(),
            MetadataAtomic(),
            ShadowPagesNeverTorn(),
            FsckDissectAgree(),
            RemoteTierConsistent(),
        ]
    )
