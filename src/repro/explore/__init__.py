"""Exhaustive crash-point exploration against a declared spec.

The reliability campaigns (:mod:`repro.reliability`) *sample* the crash
space with random fault injection; this package *sweeps* it.  One clean
run of a deterministic workload under the flight recorder enumerates
every store/cache-write/writeback-flush/shadow-flip/registry-update/ack
boundary in the event stream; the explorer then re-runs the workload
once per boundary, forces a crash at exactly that event, warm-reboots,
and holds the recovered system to a declared, composable
crash-consistency spec — acknowledged data durable, metadata atomic,
shadow pages never torn, fsck and the independent verifier in
agreement.  Violations are typed counterexamples replayable by
``(seed, event_index)``, with the post-recovery image and a forensics
report dumped alongside.

Modules: :mod:`~repro.explore.boundaries` (the crash-point work list),
:mod:`~repro.explore.spec` (the declared spec),
:mod:`~repro.explore.workloads` (deterministic drivers with durability
models), :mod:`~repro.explore.explorer` (enumeration, per-boundary
trials, the parallel sweep, replay, rendering).
"""

from repro.explore.boundaries import (
    Boundary,
    boundary_census,
    enumerate_boundaries,
)
from repro.explore.explorer import (
    BoundaryVerdict,
    EnumerationResult,
    ExploreError,
    ExploreReport,
    explore,
    format_explore_report,
    replay,
    replay_command,
    run_boundary_trial,
    run_enumeration,
    run_trial_task,
)
from repro.explore.spec import (
    CrashContext,
    CrashSpec,
    SpecClause,
    SpecViolation,
    default_spec,
)
from repro.explore.workloads import ExploreConfig, WORKLOAD_NAMES, build_run

__all__ = [
    "Boundary",
    "BoundaryVerdict",
    "CrashContext",
    "CrashSpec",
    "EnumerationResult",
    "ExploreConfig",
    "ExploreError",
    "ExploreReport",
    "SpecClause",
    "SpecViolation",
    "WORKLOAD_NAMES",
    "boundary_census",
    "build_run",
    "default_spec",
    "enumerate_boundaries",
    "explore",
    "format_explore_report",
    "replay",
    "replay_command",
    "run_boundary_trial",
    "run_enumeration",
    "run_trial_task",
]
