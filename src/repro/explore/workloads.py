"""The explorer's workloads: deterministic drivers with a durability model.

A workload is everything the explorer needs to (a) run once under the
flight recorder to enumerate boundaries and (b) re-run to any boundary,
crash, recover, and hand the spec a :class:`~repro.explore.spec.CrashContext`:

* ``basic`` — a scripted single-caller VFS workload (mkdir/create/
  write/fsync/rename/unlink) whose durability model is a bare
  :class:`~repro.server.journal.AckJournal`: every completed operation
  is recorded as a promise, the operation in flight at the crash is
  passed to the audit as ``inflight`` so its partial effects are
  adopted rather than miscounted.
* ``traffic`` — a :class:`~repro.server.service.FileService` under
  seeded :mod:`~repro.server.loadgen` clients, so *acknowledged-write
  durability* is in spec scope: the service absorbs the crash, recovers
  in line, and its own audit trail feeds the spec.  The
  ``plant_ack_bug`` knob switches on the service's deliberately planted
  ``ack_before_execute`` ordering bug for the counterexample tests.

Every run is a pure function of :class:`ExploreConfig`: same config,
same event stream, same verdicts — on either execution engine, at any
job count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CrashedMachineError, FileSystemError, SystemCrash
from repro.fs.dissect import (
    compare_verdicts,
    dissect_image,
    fsck_acknowledged,
    snapshot,
)
from repro.reliability.campaign import system_spec_for
from repro.server.journal import AckJournal
from repro.server.loadgen import LoadClient, LoadSpec, run_load
from repro.server.service import FileService, ServiceConfig
from repro.system import build_system
from repro.util.prng import DeterministicRandom, pattern_bytes

from repro.explore.spec import CrashContext

WORKLOAD_NAMES = ("basic", "traffic")


def _fsck_acknowledged(finding, fixes) -> bool:
    """Agreement-with-disclosure filter over one dissect finding.

    The prefix-match logic is shared with the remote-tier audit and
    lives in :func:`repro.fs.dissect.fsck_acknowledged`; this wrapper
    just extracts the finding's location string.
    """
    return fsck_acknowledged(str(getattr(finding, "where", "")), fixes)


@dataclass(frozen=True)
class ExploreConfig:
    """Everything that shapes one exploration (the determinism contract)."""

    workload: str = "basic"
    #: "disk" | "rio_noprot" | "rio_prot" (the spec assumes Rio semantics;
    #: exploring "disk" is allowed and is expected to violate durability).
    system: str = "rio_prot"
    seed: int = 1
    fs_blocks: int = 192
    #: basic: seeded write rounds between the fixed prologue/epilogue.
    ops: int = 8
    #: traffic: clients and programs per client.
    clients: int = 2
    ops_per_client: int = 4
    #: traffic: switch on the service's planted ack-before-execute bug.
    plant_ack_bug: bool = False
    #: Tiered backing store behind the disk ("local" | "objectstore" |
    #: "tiered"), or None for the classic single-tier stack.  With a
    #: backend the workload epilogue drains the upload queue, so the
    #: enumeration also yields ``backend/upload``/``backend/commit``
    #: boundaries and the spec's remote-tier clause engages.
    backend: Optional[str] = None
    #: Pin the execution engine (None = the process default).
    fast_path: Optional[bool] = None
    #: Recorder ring capacity; enumeration requires zero eviction.
    event_cap: int = 1 << 20

    def to_json_dict(self) -> Dict[str, Any]:
        """Wire form (worker payloads, checkpoint fingerprints)."""
        return {
            "workload": self.workload,
            "system": self.system,
            "seed": self.seed,
            "fs_blocks": self.fs_blocks,
            "ops": self.ops,
            "clients": self.clients,
            "ops_per_client": self.ops_per_client,
            "plant_ack_bug": self.plant_ack_bug,
            "backend": self.backend,
            "fast_path": self.fast_path,
            "event_cap": self.event_cap,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "ExploreConfig":
        """Inverse of :meth:`to_json_dict`."""
        return cls(**data)

    def fingerprint(self) -> Dict[str, Any]:
        """The journal fingerprint: everything but the engine pin (the
        streams are engine-identical, so cached verdicts are too)."""
        out = self.to_json_dict()
        out.pop("fast_path")
        return out


class _RunBase:
    """Shared skeleton: build the system, drive, recover, contextualize."""

    def __init__(self, config: ExploreConfig) -> None:
        self.config = config
        spec = system_spec_for(config.system, fs_blocks=config.fs_blocks)
        if config.backend is not None:
            spec = replace(
                spec, backend=config.backend, backend_seed=config.seed
            )
        if config.fast_path is not None:
            spec = replace(
                spec, machine=replace(spec.machine, fast_path=config.fast_path)
            )
        self.system = build_system(spec)
        self.recorder = self.system.machine.recorder
        self.crashed = False
        self.completed = False
        self.recovery_error: Optional[str] = None
        self.reboot = None
        self.lost: List[str] = []
        self.image: Optional[bytes] = None
        self.dissect = None
        self.divergence = None
        self.remote = None

    def execute(self) -> None:
        raise NotImplementedError

    def _journal(self):
        """The durability model backing the remote audit (or None)."""
        return None

    def _drain_backend_epilogue(self) -> None:
        """With a backend: flush and drain at the end of a clean run.

        This is the administrative durability point (the paper's
        footnote-1 toggle) that turns the clean enumeration run into an
        upload producer even under the Rio policy, whose sync/fsync are
        no-ops — without it a rio-system exploration would enumerate no
        ``backend/*`` boundaries at all.  Gated on the backend so runs
        without one replay today's event streams byte for byte.
        """
        if self.system.backing is None or self.system.disk is None:
            return
        self.system.fs.flush_data(sync=True)
        self.system.fs.flush_metadata(sync=True)
        self.system.drain_disks()
        self.system.backing.drain_uploads()

    def _remote_check(self) -> None:
        """Run the remote-tier recovery audit once (crashed runs only)."""
        if self.remote is not None or self.system.backing is None:
            return
        if not self.crashed or self.reboot is None or self.recovery_error is not None:
            return
        journal = self._journal()
        if journal is None:
            return
        from repro.backend.audit import RemoteCheck, remote_recovery_audit

        try:
            self.remote = remote_recovery_audit(self.system, journal)
        except Exception as exc:  # the spec turns this into a violation
            self.remote = RemoteCheck(
                error=f"remote audit failed: {type(exc).__name__}: {exc}"
            )

    def _scan_disk(self) -> None:
        """The independent second opinion over the recovered durable state.

        The campaign scans the image exactly as fsck left it; the
        explorer's spec judges something stronger — that the *recovered
        system's* durable image is structurally consistent.  On Rio the
        post-crash disk legitimately holds stale partial flushes (a dir
        block written before its dot entries, say) that fsck tolerates
        and recovery supersedes from the registry-restored cache, so the
        recovered file system is flushed to disk first and dissect walks
        what the recovered reality would persist.  Any anomaly in *that*
        image is a genuine inconsistency in the recovered state — unless
        fsck's own fix list already disclosed the damage at the same
        location (see :func:`_fsck_acknowledged`), in which case the two
        judges agree and only the full report records the defect.
        """
        fsck = getattr(self.reboot, "fsck", None)
        if self.system.disk is None or fsck is None:
            return
        self.system.fs.flush_data(sync=True)
        self.system.fs.flush_metadata(sync=True)
        self.system.drain_disks()
        self.image = snapshot(self.system.disk)
        self.dissect = dissect_image(self.image)
        fixes = list(getattr(fsck, "fixes", None) or [])
        undisclosed = [
            finding
            for finding in self.dissect.findings
            if not _fsck_acknowledged(finding, fixes)
        ]
        for_verdict = replace(self.dissect, findings=undisclosed)
        self.divergence = compare_verdicts(
            fsck_unrecoverable=fsck.unrecoverable,
            fsck_fix_count=fsck.fix_count,
            report=for_verdict,
        )

    def context(self, event_index: int, kind: str = "?", op: str = "?") -> CrashContext:
        self._remote_check()
        return CrashContext(
            workload=self.config.workload,
            seed=self.config.seed,
            event_index=event_index,
            boundary_kind=kind,
            boundary_op=op,
            system=self.system,
            reboot=self.reboot,
            recovery_error=self.recovery_error,
            lost=list(self.lost),
            dissect=self.dissect,
            divergence=self.divergence,
            remote=self.remote,
        )


class _BasicRun(_RunBase):
    """The scripted single-caller workload over a bare AckJournal model."""

    def __init__(self, config: ExploreConfig) -> None:
        super().__init__(config)
        self.model = AckJournal()
        self._fds: Dict[str, int] = {}
        self._inflight: Optional[dict] = None

    # -- the script ----------------------------------------------------

    def _steps(self):
        """Yield ``(inflight_desc, thunk)`` pairs; thunks record into the
        model only *after* the VFS call succeeded (a promise is an
        acknowledgement, never an intention)."""
        vfs = self.system.vfs
        model = self.model
        fds = self._fds
        rng = DeterministicRandom(self.config.seed ^ 0xB0A2D)

        def mkdir(path: str) -> Tuple[dict, Any]:
            def thunk():
                vfs.mkdir(path)
                model.record(0, 0, "mkdir", path)

            return {"op": "mkdir", "path": path}, thunk

        def open_create(path: str) -> Tuple[dict, Any]:
            def thunk():
                fds[path] = vfs.open(path, create=True)
                model.record(0, 0, "open", path)

            return {"op": "open", "path": path}, thunk

        def write(path: str, offset: int, size: int, salt: int) -> Tuple[dict, Any]:
            data = pattern_bytes(self.config.seed ^ salt, offset, size)

            def thunk():
                vfs.pwrite(fds[path], data, offset)
                model.record(0, 0, "write", path, offset=offset, data=data)

            return (
                {"op": "write", "path": path, "offset": offset, "length": size},
                thunk,
            )

        def fsync(path: str) -> Tuple[dict, Any]:
            def thunk():
                vfs.fsync(fds[path])

            return {"op": "fsync", "path": path}, thunk

        def close(path: str) -> Tuple[dict, Any]:
            def thunk():
                vfs.close(fds.pop(path))

            return {"op": "close", "path": path}, thunk

        def rename(old: str, new: str) -> Tuple[dict, Any]:
            def thunk():
                vfs.rename(old, new)
                model.record(0, 0, "rename", old, new_path=new)

            return {"op": "rename", "path": old, "new_path": new}, thunk

        def unlink(path: str) -> Tuple[dict, Any]:
            def thunk():
                vfs.unlink(path)
                model.record(0, 0, "unlink", path)

            return {"op": "unlink", "path": path}, thunk

        yield mkdir("/w")
        yield mkdir("/w/sub")
        files = ["/w/a", "/w/b", "/w/sub/c"]
        for path in files:
            yield open_create(path)
        for round_no in range(self.config.ops):
            path = files[rng.randrange(len(files))]
            offset = rng.randrange(4096)
            size = rng.randint(100, 1200)
            yield write(path, offset, size, round_no + 1)
            if round_no % 4 == 3:
                yield fsync(path)
        yield close("/w/b")
        yield rename("/w/b", "/w/b2")
        yield open_create("/w/tmp")
        yield write("/w/tmp", 0, 300, 0x7E4)
        yield close("/w/tmp")
        yield unlink("/w/tmp")
        yield fsync("/w/a")

    # -- drive ----------------------------------------------------------

    def _journal(self):
        return self.model

    def execute(self) -> None:
        for desc, thunk in self._steps():
            self._inflight = desc
            try:
                thunk()
            except (SystemCrash, CrashedMachineError):
                self.crashed = True
                self._recover()
                return
        # The epilogue drain is administrative: nothing is in flight,
        # so a crash inside it loses no promise.
        self._inflight = None
        try:
            self._drain_backend_epilogue()
        except (SystemCrash, CrashedMachineError):
            self.crashed = True
            self._recover()
            return
        self.completed = True

    def _recover(self) -> None:
        try:
            self.reboot = self.system.reboot()
        except Exception as exc:
            self.recovery_error = f"reboot failed: {type(exc).__name__}: {exc}"
            return
        self._scan_disk()
        try:
            audit = self.model.audit(self.system.vfs, inflight=self._inflight)
        except FileSystemError as exc:
            self.recovery_error = f"audit failed: {type(exc).__name__}: {exc}"
            return
        self.lost = list(audit.lost)


class _TrafficRun(_RunBase):
    """The file service under seeded load; the service recovers in line."""

    service: Optional[FileService] = None

    def _journal(self):
        return self.service.journal if self.service is not None else None

    def execute(self) -> None:
        config = self.config
        # The scan hook registers first so the post-fsck image is
        # captured on every recovery, service-driven or not.
        self.system.add_reboot_hook(self._on_reboot_scan)
        service = None
        try:
            service = FileService(
                self.system,
                ServiceConfig(
                    queue_depth=8,
                    batch_size=8,
                    quantum=2,
                    ack_before_execute=config.plant_ack_bug,
                ),
            )
            spec = LoadSpec(
                ops_per_client=config.ops_per_client,
                files_per_client=2,
                write_bytes=(64, 512),
                max_file_bytes=4096,
                pipeline=2,
            )
            self.service = service
            clients = [
                LoadClient(client_id, config.seed, spec)
                for client_id in range(config.clients)
            ]
            run_load(service, clients)
            self._drain_backend_epilogue()
            self.completed = True
        except (SystemCrash, CrashedMachineError):
            # The crash escaped service-guarded code (session setup, the
            # service's own construction): recover here instead.
            self.crashed = True
            if service is not None:
                try:
                    service.recover(None)
                except FileSystemError as exc:
                    self.recovery_error = (
                        f"recovery failed: {type(exc).__name__}: {exc}"
                    )
            else:
                try:
                    self.reboot = self.system.reboot()
                except Exception as exc:
                    self.recovery_error = (
                        f"reboot failed: {type(exc).__name__}: {exc}"
                    )
        except FileSystemError as exc:
            # In-line recovery itself died (reboot/audit raised).
            self.crashed = True
            self.recovery_error = f"recovery failed: {type(exc).__name__}: {exc}"
        if service is None:
            return
        if service.stats.crashes_detected > 0:
            self.crashed = True
        for audit in service.stats.audits:
            self.lost.extend(audit.lost)
        if self.completed:
            self.lost.extend(service.audit().lost)

    def _on_reboot_scan(self, system, report) -> None:
        """Reboot hook: capture the recovery report and scan the image."""
        if self.reboot is None:
            self.reboot = report
            self._scan_disk()


def build_run(config: ExploreConfig) -> _RunBase:
    """Instantiate the named workload (fresh system, nothing run yet)."""
    if config.workload == "basic":
        return _BasicRun(config)
    if config.workload == "traffic":
        return _TrafficRun(config)
    raise ValueError(
        f"unknown workload {config.workload!r}; know {WORKLOAD_NAMES}"
    )
