"""Boundary enumeration over flight-recorder streams.

A *boundary* is one recorded synchronization point the explorer must
crash at: a cache write, a cache fill, a writeback flush, a shadow-page
flip, a registry update, or a service acknowledgement.  The taxonomy
itself (:data:`repro.obs.events.BOUNDARY_EVENT_KEYS`) lives with the
recorder; this module turns one enumeration run's serialized stream
into the explorer's work list.

Boundary identity is the event's recorder sequence number (``seq``):
because both execution engines emit byte-identical streams for one
seed, ``(seed, event_index)`` names the same instant in every re-run —
which is what makes every counterexample replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.obs.events import is_boundary


@dataclass(frozen=True)
class Boundary:
    """One crash point: the event at ``index`` in the recorder stream."""

    #: The recorder sequence number — stable across deterministic re-runs.
    index: int
    kind: str
    op: str

    def key(self) -> str:
        """The census bucket this boundary belongs to, e.g. ``cache/write``."""
        return f"{self.kind}/{self.op}"

    def to_json_dict(self) -> Dict[str, Any]:
        """Wire form (checkpoint journals, worker payloads)."""
        return {"index": self.index, "kind": self.kind, "op": self.op}

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "Boundary":
        """Inverse of :meth:`to_json_dict`."""
        return cls(index=data["index"], kind=data["kind"], op=data["op"])


def enumerate_boundaries(events: List[Dict[str, Any]]) -> List[Boundary]:
    """Extract every crash-point boundary from a serialized event stream.

    ``events`` must be a complete stream (no ring eviction): the
    enumeration run uses a cap large enough that ``dropped == 0``,
    which :func:`repro.explore.explorer.run_enumeration` enforces.
    """
    return [
        Boundary(index=ev["seq"], kind=ev["kind"], op=ev["op"])
        for ev in events
        if is_boundary(ev["kind"], ev["op"])
    ]


def boundary_census(boundaries: List[Boundary]) -> Dict[str, int]:
    """Count boundaries per ``kind/op`` bucket (sorted keys)."""
    census: Dict[str, int] = {}
    for boundary in boundaries:
        key = boundary.key()
        census[key] = census.get(key, 0) + 1
    return dict(sorted(census.items()))
