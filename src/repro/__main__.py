"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``    — the quickstart: write, crash, warm reboot, read back.
* ``table1``  — run the reliability campaign (Table 1) and print it.
  ``--jobs N`` fans trials out across N worker processes (same output,
  bit for bit); ``--resume PATH`` checkpoints finished trials to a JSONL
  journal and resumes from it; ``--systems``/``--faults`` select a
  subset of the grid; ``--trace-corruptions`` (needs ``--resume``)
  records every trial's flight-recorder stream and drops per-corrupting-
  trial JSONL traces next to the journal.
* ``forensics`` — per-trial crash forensics over a traced journal:
  injection -> first divergent store -> crash -> detector evidence.
* ``table2``  — run the performance grid (Table 2) and print it.
* ``mttf``    — the section 3.3 MTTF illustration from the paper's rates.
* ``analyze`` — static analysis of the kernel text: disassembly, CFG,
  lint findings and the code-patching plan for one routine (or all).
* ``lint``    — run the lint suite over every kernel routine; exits
  non-zero on findings (used by ``make lint``).
* ``serve``   — the crash-transparent file service under a crash storm:
  N clients, M mid-traffic kernel crashes, warm reboots, and the
  zero-lost-acks durability audit (exit 1 if any ack was lost).
  ``--backend tiered`` puts a write-back object-store tier behind the
  disk: every recovery reconciles the remote tier, and the campaign
  finishes with the remote-only audit (the local disk thrown away).
* ``loadgen`` — the same deterministic multi-client load with no storm:
  a pure throughput/latency measurement of the service.
* ``cluster`` — the multi-kernel cluster: N independent Machine+Kernel
  shards behind a deterministic consistent-hash router, in-process or
  one worker process per shard (``--jobs``), optionally under a
  *rolling* crash storm (one shard down at a time); exit 1 if any
  acknowledged op was lost.
* ``chaos``   — the chaos capability matrix: one traffic-under-faults
  trial per fault capability (allocation denials, queue overflows,
  disk-full, slow IO, fail-Nth), reporting p99-under-chaos, recovery
  time and the zero-lost-acks SLO.  ``--jobs N`` fans trials across
  workers (bit-identical campaign digest at any N); ``--trials``
  selects a subset of the matrix.  Exit 1 on any SLO violation.
* ``explore`` — the exhaustive crash-point explorer: enumerate every
  store/flush/shadow-flip boundary in one workload run, crash at each,
  and hold the recovery to the declared crash-consistency spec.
  ``--jobs N`` fans boundaries across workers (identical report at any
  N); ``--resume PATH`` checkpoints verdicts; ``--replay INDEX``
  re-runs one counterexample by its event index.  Exits 1 on spec
  violations, 2 on an incomplete sweep.
* ``dissect`` — the independent on-disk-format verifier: statically
  analyze a disk image (``RIOIMG1`` container or raw bytes) and print
  typed findings; exits non-zero when the image is not clean.
* ``dump-disk`` — build a file system, optionally age it with seeded
  churn, flush, and dump the disk to an image container.
* ``load-disk`` — install a dumped image onto a fresh disk, run both
  fsck and dissect over it, and report whether their verdicts agree
  (exit 1 on divergence).
* ``fsck-remote`` — the worked outage-recovery scenario: crash a
  tiered stack with the upload queue still dirty (``--outage`` holds
  the object store down through the reboot), then reconcile the remote
  tier under the s3ql-style ``--batch``/``--force`` switches and
  cross-check the materialized image with the independent verifier.

Each accepts ``--scale`` to trade time for statistics.
"""

from __future__ import annotations

import argparse
import sys


def cmd_demo(_args) -> int:
    """The quickstart: write, crash, warm reboot, read back."""
    from repro import RioConfig, SystemSpec, build_system

    system = build_system(SystemSpec(policy="rio", rio=RioConfig.with_protection()))
    fd = system.vfs.open("/demo", create=True)
    system.vfs.write(fd, b"memory, surviving a crash")
    system.vfs.close(fd)
    print(f"wrote /demo with {system.disk.stats.writes} disk writes")
    system.crash("demo crash")
    report = system.reboot()
    print(
        f"warm reboot: {report.warm.ubc_restored} file pages restored, "
        f"{report.fsck.fix_count} fsck fixes"
    )
    data = system.fs.read(system.fs.namei("/demo"), 0, 64)
    print(f"recovered: {data!r}")
    return 0 if data == b"memory, surviving a crash" else 1


def _parse_fault_types(text: str):
    """CSV of Table 1 row labels ("kernel text") or enum names
    ("KERNEL_TEXT", case-insensitive)."""
    from repro.faults.types import FaultType

    faults = []
    for token in text.split(","):
        token = token.strip()
        by_value = {f.value: f for f in FaultType}
        by_name = {f.name.lower(): f for f in FaultType}
        fault = by_value.get(token) or by_name.get(token.lower().replace(" ", "_"))
        if fault is None:
            known = ", ".join(f.value for f in FaultType)
            raise SystemExit(f"unknown fault type {token!r}; known: {known}")
        faults.append(fault)
    return tuple(faults)


def cmd_table1(args) -> int:
    """Run the Table 1 reliability campaign (serial or parallel)."""
    from repro.faults.types import ALL_FAULT_TYPES
    from repro.reliability import (
        SYSTEM_NAMES,
        CampaignEngine,
        format_table1,
        run_table1_campaign,
    )

    crashes = max(1, args.scale)
    systems = tuple(args.systems.split(",")) if args.systems else SYSTEM_NAMES
    unknown = [s for s in systems if s not in SYSTEM_NAMES]
    if unknown:
        raise SystemExit(f"unknown system {unknown[0]!r}; known: {SYSTEM_NAMES}")
    fault_types = _parse_fault_types(args.faults) if args.faults else ALL_FAULT_TYPES
    if args.trace_corruptions and args.resume is None:
        raise SystemExit(
            "--trace-corruptions needs --resume PATH: the per-trial traces "
            "are written next to the checkpoint journal"
        )
    overrides = {"trace_events": True} if args.trace_corruptions else None
    progress = lambda line: print("  " + line, file=sys.stderr)  # noqa: E731
    if args.jobs == 1 and args.resume is None:
        print(f"running the Table 1 campaign ({crashes} crashes/cell; paper used 50) ...")
        table = run_table1_campaign(
            crashes_per_cell=crashes,
            systems=systems,
            fault_types=fault_types,
            progress=progress,
        )
        print(format_table1(table, systems=systems))
        return 0
    print(
        f"running the Table 1 campaign ({crashes} crashes/cell; paper used 50) "
        f"on {args.jobs} worker(s)"
        + (f", checkpointing to {args.resume}" if args.resume else "")
        + " ..."
    )
    engine = CampaignEngine(
        crashes_per_cell=crashes,
        systems=systems,
        fault_types=fault_types,
        config_overrides=overrides,
        jobs=args.jobs,
        checkpoint=args.resume,
        progress=progress,
    )
    table = engine.run()
    print(format_table1(table, systems=systems))
    stats = engine.stats
    print(
        f"({stats.executed} trials run, {stats.from_checkpoint} from checkpoint, "
        f"{stats.worker_crashes} worker crashes, {stats.wall_seconds:.1f}s)",
        file=sys.stderr,
    )
    if not engine.complete:
        print("campaign incomplete; re-run with --resume to continue", file=sys.stderr)
        return 3
    return 0


def _result_corrupted(result: dict) -> bool:
    """Mirror of ``CrashTestResult.corrupted`` over the wire format."""
    return bool(
        result.get("memtest_problems")
        or result.get("checksum_mismatches")
        or result.get("static_copy_mismatch")
        or result.get("recovery_failed")
    )


def cmd_forensics(args) -> int:
    """Per-trial crash forensics over a traced campaign journal."""
    from repro.obs import build_forensic_report, format_forensic_report
    from repro.reliability.campaign import CrashTestConfig, run_baseline_trace
    from repro.reliability.journal import read_trials

    try:
        entries = read_trials(args.journal)
    except FileNotFoundError:
        raise SystemExit(f"no such journal: {args.journal}")

    wanted = None
    if args.trial:
        parts = args.trial.split("/")
        if len(parts) < 3:
            raise SystemExit("--trial wants SYSTEM/FAULT/ATTEMPT")
        try:
            wanted = (parts[0], "/".join(parts[1:-1]), int(parts[-1]))
        except ValueError:
            raise SystemExit(f"--trial attempt must be an integer, got {parts[-1]!r}")

    def norm(fault: str) -> str:
        return fault.replace(" ", "_")

    selected = []
    for key in sorted(entries):
        system, fault, attempt = key
        if wanted is not None and (
            system != wanted[0] or norm(fault) != norm(wanted[1]) or attempt != wanted[2]
        ):
            continue
        _seed, result = entries[key]
        if wanted is None and not (result.get("crashed") and _result_corrupted(result)):
            continue
        selected.append((key, result))

    if wanted is not None and not selected:
        raise SystemExit(f"trial {args.trial!r} not found in {args.journal}")
    if not selected:
        print(f"no corrupting trials in {args.journal}; nothing to report")
        return 0

    reported = 0
    for key, result in selected:
        label = "/".join(map(str, key))
        events = result.get("trace_events")
        if events is None:
            print(f"=== {label}: no event trace (campaign ran without "
                  "--trace-corruptions); skipping ===\n")
            continue
        baseline = None
        if not args.no_baseline:
            config = CrashTestConfig.from_json_dict(result["config"])
            # ops_run + 1 so the baseline fully executes the operation
            # the faulted run died inside.
            baseline = run_baseline_trace(config, result.get("ops_run", 0) + 1)
        report = build_forensic_report(result, events, baseline)
        print(f"=== {label} ===")
        print(format_forensic_report(report))
        print()
        reported += 1
    if reported == 0 and wanted is not None:
        return 1
    return 0


def cmd_table2(_args) -> int:
    """Run the Table 2 performance grid and its ratio summary."""
    from repro.perf import Table2, format_table2, ratio_summary, run_table2
    from repro.perf.report import format_ratio_summary

    table = Table2(results=run_table2())
    print(format_table2(table))
    print()
    print(format_ratio_summary(ratio_summary(table)))
    return 0


def cmd_mttf(_args) -> int:
    """Print the section 3.3 MTTF illustration."""
    from repro.analysis import mttf_table
    from repro.analysis.mttf import PAPER_RATES

    print("MTTF at one crash per two months (paper's Table 1 rates):")
    for name, years in mttf_table(PAPER_RATES).items():
        print(f"  {name:11s}: {years:5.1f} years")
    return 0


def cmd_analyze(args) -> int:
    """Static analysis of kernel routines: disassembly, CFG, lint, patch plan."""
    from repro.isa.analysis import build_cfg, disassemble_words, lint_words, patch_routine
    from repro.isa.assembler import assemble
    from repro.isa.routines import ROUTINE_SOURCES

    names = [args.routine] if args.routine else sorted(ROUTINE_SOURCES)
    unknown = [n for n in names if n not in ROUTINE_SOURCES]
    if unknown:
        print(f"unknown routine {unknown[0]!r}; known: {', '.join(sorted(ROUTINE_SOURCES))}")
        return 2
    for name in names:
        words, labels = assemble(ROUTINE_SOURCES[name])
        dis = disassemble_words(words, labels=labels, name=name)
        cfg = build_cfg(dis)
        print(f"=== {name} ({len(words)} words, {len(cfg.blocks)} blocks) ===")
        print(dis.source, end="")
        print("blocks:")
        for block in cfg.blocks.values():
            succs = ", ".join(str(s) for s in sorted(block.succs)) or "-"
            term = "  [terminates]" if block.terminates else ""
            print(f"  [{block.start:3d}..{block.end:3d})  succs: {succs}{term}")
        findings = lint_words(name, words, labels=labels)
        if findings:
            print("lint:")
            for finding in findings:
                print(f"  {finding}")
        else:
            print("lint: clean")
        _, _, report = patch_routine(name, words, labels, optimize=not args.naive)
        print(
            f"patch: {report.stores} stores, {report.checked} checked "
            f"({report.spilled} spilled), {report.elided_stack} elided (stack), "
            f"{report.elided_rewalk} elided (rewalk); "
            f"+{report.added_words} words"
        )
        print()
    return 0


def cmd_lint(_args) -> int:
    """Lint every kernel routine; exit non-zero on findings."""
    from repro.isa.analysis import lint_routines

    findings = lint_routines()
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("kernel text lint: clean")
    return 0


def _traffic_config(args, crashes: int):
    """Build a TrafficConfig from the shared serve/loadgen flags."""
    from repro.reliability import TrafficConfig
    from repro.server import LoadSpec

    config = TrafficConfig(
        system=args.system,
        clients=args.clients,
        crashes=crashes,
        seed=args.seed,
        storm=args.storm,
        load=LoadSpec(ops_per_client=args.ops, pipeline=args.pipeline),
        repair=args.repair,
        backend=args.backend,
    )
    if args.faults:
        config.fault_type = _parse_fault_types(args.faults)[0]
    return config


def cmd_serve(args) -> int:
    """File service under a crash storm; exit 1 if any ack was lost."""
    from repro.reliability import format_traffic_report, run_traffic_campaign

    config = _traffic_config(args, crashes=max(0, args.crashes))
    print(
        f"serving {config.clients} clients on {config.system} through "
        f"{config.crashes} {config.storm} crash(es) ...",
        file=sys.stderr,
    )
    result = run_traffic_campaign(config)
    if args.json:
        import json

        print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(format_traffic_report(result))
    return 0 if result.ok else 1


def cmd_loadgen(args) -> int:
    """Deterministic multi-client load, no crashes: a pure measurement."""
    from repro.reliability import format_traffic_report, run_traffic_campaign

    config = _traffic_config(args, crashes=0)
    print(
        f"load-generating: {config.clients} clients on {config.system} ...",
        file=sys.stderr,
    )
    result = run_traffic_campaign(config)
    if args.json:
        import json

        print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(format_traffic_report(result))
    return 0 if result.ok else 1


def cmd_cluster(args) -> int:
    """The multi-kernel cluster under seeded load, optionally with a
    rolling crash storm; exit 1 if any acknowledged op was lost."""
    from repro.reliability import (
        ClusterTrafficConfig,
        format_cluster_report,
        run_cluster_campaign,
    )
    from repro.server import LoadSpec

    config = ClusterTrafficConfig(
        shards=args.shards,
        system=args.system,
        clients=args.clients,
        crashes_per_shard=(
            args.crashes_per_shard if args.storm == "rolling" else 0
        ),
        seed=args.seed,
        router_mode=args.router,
        jobs=args.jobs,
        load=LoadSpec(ops_per_client=args.ops, pipeline=args.pipeline),
        fast_path=args.fast_path,
    )
    print(
        f"clustering: {config.clients} clients over {config.shards} "
        f"{config.system} shard(s), storm={args.storm} ...",
        file=sys.stderr,
    )
    result = run_cluster_campaign(config)
    if args.json:
        import json

        print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(format_cluster_report(result))
    return 0 if result.ok else 1


def cmd_chaos(args) -> int:
    """The chaos capability matrix; exit 1 on any SLO violation."""
    from repro.reliability import (
        ChaosCampaignConfig,
        format_chaos_report,
        run_chaos_campaign,
    )

    config = ChaosCampaignConfig(
        system=args.system,
        clients=args.clients,
        crashes=max(0, args.crashes),
        seed=args.seed,
        jobs=args.jobs,
        ops_per_client=args.ops,
        fast_path=args.fast_path,
    )
    if args.trials:
        wanted = [name.strip() for name in args.trials.split(",")]
        by_name = dict(config.matrix)
        unknown = [name for name in wanted if name not in by_name]
        if unknown:
            known = ", ".join(trial for trial, _ in config.matrix)
            raise SystemExit(f"unknown trial {unknown[0]!r}; known: {known}")
        config.matrix = tuple((name, by_name[name]) for name in wanted)
    print(
        f"chaos matrix: {len(config.matrix)} trial(s) x {config.clients} "
        f"clients on {config.system}, {config.jobs} job(s) ...",
        file=sys.stderr,
    )
    result = run_chaos_campaign(config)
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "digest": result.digest,
                    "ok": result.ok,
                    "trials": [trial.to_json_dict() for trial in result.trials],
                    "quarantined": result.quarantined,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(format_chaos_report(result))
    return 0 if result.ok else 1


def cmd_explore(args) -> int:
    """Exhaustive boundary sweep (or one-counterexample replay)."""
    from repro.explore import (
        ExploreConfig,
        ExploreError,
        explore,
        format_explore_report,
        replay,
    )

    config = ExploreConfig(
        workload=args.workload,
        system=args.system,
        seed=args.seed,
        ops=args.ops,
        clients=args.clients,
        ops_per_client=args.ops_per_client,
        plant_ack_bug=args.plant_ack_bug,
        backend=args.backend,
    )
    if args.replay is not None:
        try:
            verdict = replay(config, args.replay, artifact_dir=args.artifacts)
        except ExploreError as exc:
            raise SystemExit(str(exc))
        if args.json:
            import json

            print(json.dumps(verdict.to_json_dict(), indent=2, sort_keys=True))
        else:
            print(
                f"replayed {config.workload} seed {config.seed} "
                f"event {args.replay} ({verdict.boundary.key()}): "
                + ("spec holds" if verdict.ok else "SPEC VIOLATED")
            )
            for violation in verdict.violations:
                print(f"  [{violation.clause}] {violation.detail}")
            if verdict.artifact_image:
                print(f"  image: {verdict.artifact_image}")
            if verdict.artifact_report:
                print(f"  forensics: {verdict.artifact_report}")
        return 0 if verdict.ok else 1
    print(
        f"exploring {config.workload} on {config.system} "
        f"(seed {config.seed}, {args.jobs} job(s)) ...",
        file=sys.stderr,
    )
    progress = lambda line: print("  " + line, file=sys.stderr)  # noqa: E731
    try:
        report = explore(
            config,
            jobs=args.jobs,
            checkpoint=args.resume,
            artifact_dir=args.artifacts,
            progress=progress,
        )
    except ExploreError as exc:
        raise SystemExit(str(exc))
    if args.json:
        import json

        print(json.dumps(report.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(format_explore_report(report))
    if not report.complete:
        print("sweep incomplete; re-run with --resume to continue", file=sys.stderr)
        return 2
    return 1 if report.violations else 0


def _read_image(path: str) -> bytes:
    """Image payload from ``path``: a ``RIOIMG1`` container (digest
    verified) or, when the magic is absent, the file's raw bytes."""
    from repro.fs.dissect import IMAGE_MAGIC, ImageFormatError, load_image

    try:
        with open(path, "rb") as fh:
            head = fh.read(len(IMAGE_MAGIC))
    except FileNotFoundError:
        raise SystemExit(f"no such image: {path}")
    if head == IMAGE_MAGIC:
        try:
            payload, _meta = load_image(path)
        except ImageFormatError as exc:
            raise SystemExit(f"bad image container {path}: {exc}")
        return payload
    with open(path, "rb") as fh:
        return fh.read()


def cmd_dissect(args) -> int:
    """Static analysis of a disk image with the independent verifier."""
    from repro.fs.dissect import dissect_image

    report = dissect_image(_read_image(args.image))
    if args.json:
        print(report.to_json())
    else:
        print(report.format())
    return 0 if report.clean else 1


def _age_filesystem(system, *, ops: int, seed: int, prefix: str = "/aged") -> None:
    """Seeded create/overwrite/unlink churn — ages an image for dumping.

    Pure function of ``(ops, seed, prefix)`` so two dumps of the same
    configuration produce byte-identical images.
    """
    import random

    rng = random.Random(seed)
    system.vfs.mkdir(prefix)
    live: list[str] = []
    for i in range(ops):
        action = rng.random()
        if live and action < 0.2:
            system.vfs.unlink(live.pop(rng.randrange(len(live))))
            continue
        if live and action < 0.5:
            path = rng.choice(live)
        else:
            path = f"{prefix}/f{i}"
            live.append(path)
        fd = system.vfs.open(path, create=True, truncate=True)
        body = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 4096)))
        system.vfs.write(fd, body)
        system.vfs.close(fd)


def cmd_dump_disk(args) -> int:
    """Build a file system, optionally age it, flush, and dump the image."""
    from repro.fs.dissect import dump_image, snapshot
    from repro.reliability.campaign import system_spec_for
    from repro.system import build_system

    system = build_system(system_spec_for(args.system, fs_blocks=args.blocks))
    if args.age:
        _age_filesystem(system, ops=args.age, seed=args.seed)
    # Only a fully flushed image is expected to parse clean: on Rio the
    # disk is legitimately stale between flushes.
    system.fs.flush_data(sync=True)
    system.fs.flush_metadata(sync=True)
    system.drain_disks()
    digest = dump_image(
        args.out,
        snapshot(system.disk),
        meta={
            "system": args.system,
            "blocks": args.blocks,
            "aged_ops": args.age,
            "seed": args.seed,
        },
    )
    print(f"wrote {args.out}: {args.blocks} blocks, sha256 {digest[:16]}")
    return 0


def cmd_fsck_remote(args) -> int:
    """The worked outage-recovery scenario for the remote tier.

    Builds a tiered stack, ages it to a sealed baseline, churns again
    and crashes the kernel with the upload queue still dirty (the queue
    is kernel memory: it dies with the machine), optionally holds the
    object store down through the reboot (``--outage``: the mount-time
    reconcile defers, exactly like a cloud filesystem that must mount
    before the network is back), then heals the store and runs the
    explicit ``fsck_remote`` pass under ``--batch``/``--force``.
    Finishes with the second opinion: the image materialized from the
    object store *alone* is dissected and cross-checked against fsck.
    Exit 0 when the tier reconciled and the verdicts agree; 1 when
    repairs still need ``--batch`` or the second opinion diverges.
    """
    from repro.backend.audit import mount_materialized
    from repro.backend.fsck_remote import fsck_remote
    from repro.fs.dissect import compare_verdicts, dissect_image
    from repro.reliability.campaign import system_spec_for
    from repro.system import build_system

    say = lambda msg: print(msg, file=sys.stderr)  # noqa: E731
    spec = system_spec_for(
        args.system,
        fs_blocks=args.blocks,
        backend=args.backend,
        backend_seed=args.seed,
    )
    system = build_system(spec)
    store = system.backing

    # Phase 1: seeded churn, drained and sealed — the healthy baseline.
    _age_filesystem(system, ops=args.age, seed=args.seed)
    system.fs.flush_data(sync=True)
    system.fs.flush_metadata(sync=True)
    system.drain_disks()
    store.drain_uploads()
    baseline = fsck_remote(store, batch=True)
    say(
        f"baseline: {store.stats.uploads} block(s) uploaded "
        f"({baseline.repairs} mkfs-era reconciled), "
        f"{len(store.remote.list('obj/'))} blob(s) in the store, sealed"
    )

    # Phase 2: churn again and crash with the upload queue still dirty.
    # Raising the drain threshold holds the queue: flushes keep landing
    # on the local disk, nothing reaches the object store, the crash
    # strands every queued upload.
    from dataclasses import replace as _replace

    store.config = _replace(store.config, dirty_threshold=10**9)
    _age_filesystem(system, ops=args.age, seed=args.seed + 1, prefix="/aged2")
    system.fs.flush_data(sync=True)
    system.fs.flush_metadata(sync=True)
    system.drain_disks()
    say(
        f"crashing with {len(store._dirty)} block(s) dirty in the "
        "upload queue (kernel memory: the queue dies with the machine)"
    )
    system.crash("fsck-remote scenario", kind="forced")
    store.config = _replace(store.config, dirty_threshold=8)

    if args.outage:
        store.remote.set_down(True)
        report = system.reboot()
        remote = report.remote
        say(
            "reboot during object-store outage: reconcile "
            + ("DEFERRED (as declared)" if remote and remote.deferred else "ran?!")
        )
        store.remote.set_down(False)
        say("object store healed; running the explicit pass")
    else:
        report = system.reboot()
        remote = report.remote
        say(
            f"reboot reconcile: {remote.repairs} repair(s), "
            f"needs_batch={remote.needs_batch}"
        )

    check = fsck_remote(store, batch=args.batch, force=args.force)
    print(check.format())
    if check.needs_batch:
        say("repairs pending: re-run with --batch to apply them (s3ql rule)")

    # Second opinion: the remote tier alone must reproduce an image both
    # judges bless.
    scratch, scratch_report, image = mount_materialized(store)
    scan = dissect_image(image)
    divergence = compare_verdicts(
        fsck_unrecoverable=scratch_report.fsck.unrecoverable,
        fsck_fix_count=scratch_report.fsck.fix_count,
        report=scan,
    )
    print(
        f"materialized image {scan.image_sha256[:16]}: "
        f"{len(scan.findings)} dissect finding(s), "
        f"{scratch_report.fsck.fix_count} fsck fix(es), verdicts "
        + ("AGREE" if divergence.agreed else "DIVERGE")
    )
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "reconcile": check.to_json_dict(),
                    "divergence": divergence.to_json_dict(),
                    "image_sha256": scan.image_sha256,
                    "store_stats": store.stats.to_json_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    return 0 if check.ok and divergence.agreed else 1


def cmd_load_disk(args) -> int:
    """Install an image onto a fresh disk, fsck it, and cross-check with
    the independent verifier; exit 1 when their verdicts diverge."""
    from repro.disk.device import SimulatedDisk
    from repro.fs.dissect import compare_verdicts, dissect_image, install
    from repro.fs.dissect.layout import SECTOR_SIZE
    from repro.fs.fsck import fsck

    payload = _read_image(args.image)
    if not payload or len(payload) % SECTOR_SIZE:
        raise SystemExit(
            f"image is {len(payload)} bytes: not a whole number of sectors"
        )
    # Dissect first — fsck repairs in place and would hide the evidence.
    scan = dissect_image(payload)
    disk = SimulatedDisk("image", num_sectors=len(payload) // SECTOR_SIZE)
    install(disk, payload)
    report = fsck(disk)
    divergence = compare_verdicts(
        fsck_unrecoverable=report.unrecoverable,
        fsck_fix_count=report.fix_count,
        report=scan,
    )
    print(scan.format())
    print(
        f"fsck: {report.fix_count} fix(es), "
        + ("UNRECOVERABLE" if report.unrecoverable else "file system recovered")
    )
    print(divergence.format())
    return 0 if divergence.agreed else 1


def _add_traffic_flags(parser, *, crashes: int | None) -> None:
    parser.add_argument(
        "--system",
        default="rio_prot",
        help="disk | rio_noprot | rio_prot (default rio_prot)",
    )
    parser.add_argument("--clients", type=int, default=16, help="concurrent clients")
    parser.add_argument(
        "--ops", type=int, default=30, help="programs per client (default 30)"
    )
    parser.add_argument(
        "--pipeline", type=int, default=4, help="requests each client keeps in flight"
    )
    parser.add_argument("--seed", type=int, default=1, help="campaign seed")
    parser.add_argument(
        "--storm",
        default="forced",
        choices=("forced", "faults"),
        help="crash storm flavour (serve only; loadgen never crashes)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help='fault type for --storm faults, e.g. "kernel stack"',
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help="re-apply lost journal entries during recovery (for disk runs)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("local", "objectstore", "tiered"),
        help="tiered backing store behind the disk (default: none); adds "
        "remote-tier reconciles at every recovery plus the final "
        "remote-only audit",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    if crashes is not None:
        parser.add_argument(
            "--crashes",
            type=int,
            default=crashes,
            help=f"mid-traffic kernel crashes (default {crashes})",
        )


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to one command."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="write, crash, warm reboot, read back")
    p1 = sub.add_parser("table1", help="run the reliability campaign")
    p1.add_argument("--scale", type=int, default=2, help="crashes per cell (paper: 50)")
    p1.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the campaign engine (default 1: serial)",
    )
    p1.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="JSONL checkpoint journal: created if missing, resumed if "
        "present; finished trials are never re-run",
    )
    p1.add_argument(
        "--systems",
        default=None,
        help="comma-separated subset of disk,rio_noprot,rio_prot (default: all)",
    )
    p1.add_argument(
        "--faults",
        default=None,
        help='comma-separated fault types, e.g. "kernel text,pointer" (default: all 13)',
    )
    p1.add_argument(
        "--trace-corruptions",
        action="store_true",
        help="record flight-recorder streams for every trial and write "
        "per-corrupting-trial JSONL traces next to the --resume journal",
    )
    pf = sub.add_parser(
        "forensics", help="per-trial crash forensics over a traced journal"
    )
    pf.add_argument("journal", help="JSONL checkpoint journal from table1 --resume")
    pf.add_argument(
        "--trial",
        default=None,
        metavar="SYSTEM/FAULT/ATTEMPT",
        help='one trial to report on, e.g. "rio_noprot/kernel_text/3" '
        "(default: every corrupting trial)",
    )
    pf.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the injection-suppressed baseline re-run and use the "
        "documented heuristic attribution instead",
    )
    sub.add_parser("table2", help="run the performance grid")
    sub.add_parser("mttf", help="the section 3.3 MTTF illustration")
    pa = sub.add_parser("analyze", help="static analysis of a kernel routine")
    pa.add_argument("routine", nargs="?", help="routine name (default: all)")
    pa.add_argument(
        "--naive", action="store_true", help="show the unoptimized patch plan"
    )
    sub.add_parser("lint", help="lint the kernel text (exit 1 on findings)")
    ps = sub.add_parser(
        "serve", help="file service under a crash storm (exit 1 on lost acks)"
    )
    _add_traffic_flags(ps, crashes=3)
    pl = sub.add_parser("loadgen", help="deterministic load, no crashes")
    _add_traffic_flags(pl, crashes=None)
    pc = sub.add_parser(
        "cluster",
        help="multi-kernel sharded service under load (exit 1 on lost acks)",
    )
    pc.add_argument("--shards", type=int, default=2, help="kernel shards (default 2)")
    pc.add_argument(
        "--system",
        default="rio_prot",
        help="disk | rio_noprot | rio_prot (default rio_prot)",
    )
    pc.add_argument("--clients", type=int, default=16, help="concurrent clients")
    pc.add_argument(
        "--ops", type=int, default=30, help="programs per client (default 30)"
    )
    pc.add_argument(
        "--pipeline", type=int, default=4, help="requests each client keeps in flight"
    )
    pc.add_argument("--seed", type=int, default=1, help="campaign seed")
    pc.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="1: all shards in-process; >1: one worker process per shard "
        "(identical digests either way)",
    )
    pc.add_argument(
        "--router",
        default="dir",
        choices=("dir", "hash"),
        help="routing key: parent directory (colocates) or full path (scatters)",
    )
    pc.add_argument(
        "--storm",
        default="none",
        choices=("none", "rolling"),
        help="rolling = forced kernel crashes staggered one shard at a time",
    )
    pc.add_argument(
        "--crashes-per-shard",
        type=int,
        default=1,
        help="crashes per shard under --storm rolling (default 1)",
    )
    pc.add_argument(
        "--fast-path",
        type=lambda v: v not in ("0", "false", "no"),
        default=None,
        metavar="0|1",
        help="pin the execution engine on every shard (default: machine default)",
    )
    pc.add_argument("--json", action="store_true", help="machine-readable output")
    pch = sub.add_parser(
        "chaos",
        help="chaos capability matrix over the service (exit 1 on SLO violations)",
    )
    pch.add_argument(
        "--system",
        default="rio_prot",
        help="disk | rio_noprot | rio_prot (default rio_prot)",
    )
    pch.add_argument("--clients", type=int, default=16, help="concurrent clients")
    pch.add_argument(
        "--ops", type=int, default=30, help="programs per client (default 30)"
    )
    pch.add_argument(
        "--crashes",
        type=int,
        default=2,
        help="forced crashes per trial (default 2; 0 = no storm)",
    )
    pch.add_argument("--seed", type=int, default=1, help="campaign seed")
    pch.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the trial fan-out (identical digests at any N)",
    )
    pch.add_argument(
        "--trials",
        default=None,
        help="comma-separated subset of the matrix, e.g. baseline,slow_io "
        "(default: every trial)",
    )
    pch.add_argument(
        "--fast-path",
        type=lambda v: v not in ("0", "false", "no"),
        default=None,
        metavar="0|1",
        help="pin the execution engine (default: machine default)",
    )
    pch.add_argument("--json", action="store_true", help="machine-readable output")
    pe = sub.add_parser(
        "explore",
        help="exhaustive crash-point sweep against the spec (exit 1 on violations)",
    )
    pe.add_argument(
        "workload",
        nargs="?",
        default="basic",
        help="basic | traffic (default basic)",
    )
    pe.add_argument(
        "--system",
        default="rio_prot",
        help="disk | rio_noprot | rio_prot (default rio_prot)",
    )
    pe.add_argument("--seed", type=int, default=1, help="workload seed")
    pe.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (default 1: serial)",
    )
    pe.add_argument(
        "--ops", type=int, default=8, help="basic: seeded write rounds (default 8)"
    )
    pe.add_argument(
        "--clients", type=int, default=2, help="traffic: clients (default 2)"
    )
    pe.add_argument(
        "--ops-per-client",
        type=int,
        default=4,
        help="traffic: programs per client (default 4)",
    )
    pe.add_argument(
        "--plant-ack-bug",
        action="store_true",
        help="traffic: switch on the planted ack-before-execute ordering bug",
    )
    pe.add_argument(
        "--backend",
        default=None,
        choices=("local", "objectstore", "tiered"),
        help="tiered backing store: enumerates backend/upload and "
        "backend/commit boundaries and arms the remote-tier spec clause",
    )
    pe.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="JSONL checkpoint journal: created if missing, resumed if present",
    )
    pe.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="directory for counterexample images + forensics reports",
    )
    pe.add_argument(
        "--replay",
        type=int,
        default=None,
        metavar="INDEX",
        help="re-run exactly one counterexample by its event index",
    )
    pe.add_argument("--json", action="store_true", help="machine-readable report")
    pd = sub.add_parser(
        "dissect", help="static analysis of a disk image (exit 1 on findings)"
    )
    pd.add_argument("image", help="RIOIMG1 container or raw image file")
    pd.add_argument("--json", action="store_true", help="machine-readable report")
    pdd = sub.add_parser("dump-disk", help="build and dump a disk image")
    pdd.add_argument("out", help="output path (RIOIMG1 container)")
    pdd.add_argument(
        "--system",
        default="rio_prot",
        help="disk | rio_noprot | rio_prot (default rio_prot)",
    )
    pdd.add_argument(
        "--blocks", type=int, default=256, help="file system size in 8 KB blocks"
    )
    pdd.add_argument(
        "--age",
        type=int,
        default=0,
        metavar="OPS",
        help="seeded churn operations to run before dumping (default 0)",
    )
    pdd.add_argument("--seed", type=int, default=1, help="churn seed")
    pld = sub.add_parser(
        "load-disk", help="fsck + dissect an image; exit 1 on divergence"
    )
    pld.add_argument("image", help="image produced by dump-disk")
    pfr = sub.add_parser(
        "fsck-remote",
        help="crash a tiered stack mid-upload, reconcile the remote tier "
        "(exit 1 if repairs still pend or the second opinion diverges)",
    )
    pfr.add_argument(
        "--system",
        default="rio_prot",
        help="disk | rio_noprot | rio_prot (default rio_prot)",
    )
    pfr.add_argument(
        "--backend",
        default="tiered",
        choices=("local", "objectstore", "tiered"),
        help="backing-store flavour (default tiered)",
    )
    pfr.add_argument(
        "--blocks", type=int, default=256, help="file system size in 8 KB blocks"
    )
    pfr.add_argument(
        "--age",
        type=int,
        default=25,
        metavar="OPS",
        help="seeded churn operations per phase (default 25)",
    )
    pfr.add_argument("--seed", type=int, default=1, help="scenario seed")
    pfr.add_argument(
        "--batch",
        action="store_true",
        help="apply repairs instead of only reporting them (s3ql --batch)",
    )
    pfr.add_argument(
        "--force",
        action="store_true",
        help="full rescan even when the seal says local and remote match",
    )
    pfr.add_argument(
        "--outage",
        action="store_true",
        help="hold the object store down through the reboot: the mount-time "
        "reconcile defers, the explicit pass runs after the heal",
    )
    pfr.add_argument("--json", action="store_true", help="machine-readable report")
    args = parser.parse_args(argv)
    return {
        "demo": cmd_demo,
        "table1": cmd_table1,
        "forensics": cmd_forensics,
        "table2": cmd_table2,
        "mttf": cmd_mttf,
        "analyze": cmd_analyze,
        "lint": cmd_lint,
        "serve": cmd_serve,
        "loadgen": cmd_loadgen,
        "cluster": cmd_cluster,
        "chaos": cmd_chaos,
        "explore": cmd_explore,
        "dissect": cmd_dissect,
        "dump-disk": cmd_dump_disk,
        "load-disk": cmd_load_disk,
        "fsck-remote": cmd_fsck_remote,
    }[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
