"""Write-age analysis: how long does newly written data live?

Section 1: delayed-write systems hold data in memory for up to 30
seconds, but "1/3 to 2/3 of newly written data lives longer than 30
seconds [Baker91, Hartman93], so a large fraction of writes must
eventually be written through to disk under this policy".

This module traces byte-writes and deletions/overwrites on a running
system and computes the survival function of write age: what fraction of
written bytes is still live (not deleted, not overwritten) after T
seconds.  It backs the `bench_write_age` experiment, which shows why a
30-second delay buys limited traffic reduction while Rio's
delay-until-overflow lets the maximum number of files "die in memory".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class _Extent:
    born_ns: int
    length: int


@dataclass
class WriteAgeTrace:
    """Record writes and deaths; answer survival questions."""

    #: (birth_ns, death_ns or None, length) per written extent.
    extents: list = field(default_factory=list)
    _live: dict = field(default_factory=dict)  # (file, offset-page) -> index

    def record_write(self, file_id, offset: int, length: int, now_ns: int) -> None:
        """A write of [offset, offset+length); overwrites kill older data."""
        key = (file_id, offset, length)
        previous = self._live.pop(key, None)
        if previous is not None:
            birth, _, plen = self.extents[previous]
            self.extents[previous] = (birth, now_ns, plen)
        self.extents.append((now_ns, None, length))
        self._live[key] = len(self.extents) - 1

    def record_delete(self, file_id, now_ns: int) -> None:
        """The whole file dies."""
        for key in [k for k in self._live if k[0] == file_id]:
            index = self._live.pop(key)
            birth, _, length = self.extents[index]
            self.extents[index] = (birth, now_ns, length)

    def survival_fraction(self, age_seconds: float, end_ns: int) -> float:
        """Fraction of written bytes still live ``age_seconds`` after
        being written (among writes old enough to judge)."""
        age_ns = int(age_seconds * 1e9)
        judged = survived = 0
        for birth, death, length in self.extents:
            if end_ns - birth < age_ns:
                continue  # too young to judge
            judged += length
            lifetime = (death if death is not None else end_ns) - birth
            if lifetime >= age_ns:
                survived += length
        return survived / judged if judged else 0.0

    def total_written(self) -> int:
        return sum(length for _, _, length in self.extents)

    def bytes_dead_within(self, age_seconds: float) -> int:
        """Bytes that died (deleted/overwritten) within ``age_seconds`` —
        the traffic a delayed-write policy with that delay avoids."""
        age_ns = int(age_seconds * 1e9)
        return sum(
            length
            for birth, death, length in self.extents
            if death is not None and death - birth < age_ns
        )


def write_age_survival(trace: WriteAgeTrace, end_ns: int, ages=(1, 5, 15, 30, 60, 120)) -> dict:
    """Survival fractions at several thresholds."""
    return {age: trace.survival_fraction(age, end_ns) for age in ages}
