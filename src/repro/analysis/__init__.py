"""Analysis helpers: the MTTF model and write-age statistics."""

from repro.analysis.mttf import mttf_years, mttf_table
from repro.analysis.write_age import WriteAgeTrace, write_age_survival

__all__ = ["mttf_years", "mttf_table", "WriteAgeTrace", "write_age_survival"]
