"""The paper's MTTF (mean time to failure) model (section 3.3).

"To illustrate, consider a system that crashes once every two months ...
If these crashes were the sole cause of data corruption, the MTTF of a
disk-based system would be 15 years, and the MTTF of Rio without
protection would be 11 years."

MTTF = (time between crashes) / (probability a crash corrupts data).
"""

from __future__ import annotations

MONTHS_PER_YEAR = 12.0


def mttf_years(
    corruptions: int,
    crashes: int,
    months_between_crashes: float = 2.0,
) -> float:
    """Expected years until a crash corrupts file data."""
    if crashes <= 0:
        raise ValueError("crashes must be positive")
    if corruptions <= 0:
        return float("inf")
    corruption_rate = corruptions / crashes
    return months_between_crashes / corruption_rate / MONTHS_PER_YEAR


def mttf_table(
    rates: dict[str, tuple[int, int]],
    months_between_crashes: float = 2.0,
) -> dict[str, float]:
    """MTTF per system from {name: (corruptions, crashes)}."""
    return {
        name: mttf_years(corruptions, crashes, months_between_crashes)
        for name, (corruptions, crashes) in rates.items()
    }


#: The paper's Table 1 totals, for comparison benches.
PAPER_RATES = {
    "disk": (7, 650),
    "rio_noprot": (10, 650),
    "rio_prot": (4, 650),
}
