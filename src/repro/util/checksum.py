"""Checksums used for corruption detection.

The paper's detection apparatus (section 3.2) "maintains a checksum of each
memory block in the file cache"; unintentional changes show up as an
inconsistent checksum.  We use Fletcher-32, which is cheap, has no
cryptographic pretensions (matching 1996 practice — the Recovery Box used a
similar scheme) and detects the byte-level corruptions our fault injector
produces.
"""

from __future__ import annotations

import struct
from itertools import accumulate


def fletcher32(data: bytes | bytearray | memoryview) -> int:
    """Return the Fletcher-32 checksum of ``data``.

    Operates on 16-bit little-endian words; an odd trailing byte is
    zero-padded, which is the conventional behaviour.  Words are consumed
    in blocks small enough that the sums cannot overflow before reduction
    (360 words is the classical bound); within a block the running sums
    are exact integer arithmetic, so the blockwise formulation below —
    ``sum2`` grows by every prefix sum of the block — produces bit-
    identical results to the word-at-a-time loop while letting the
    per-word work happen in C (``struct.unpack`` + ``accumulate``).
    """
    buf = bytes(data)
    if len(buf) % 2:
        buf += b"\x00"
    length = len(buf) // 2
    sum1 = 0xFFFF
    sum2 = 0xFFFF
    index = 0
    while index < length:
        count = min(359, length - index)
        words = struct.unpack_from(f"<{count}H", buf, 2 * index)
        index += count
        # prefixes[i] = w_0 + ... + w_i; adding sum1*count + sum(prefixes)
        # to sum2 equals count iterations of (sum1 += w; sum2 += sum1).
        prefixes = tuple(accumulate(words))
        sum2 += sum1 * count + sum(prefixes)
        sum1 += prefixes[-1]
        sum1 = (sum1 & 0xFFFF) + (sum1 >> 16)
        sum2 = (sum2 & 0xFFFF) + (sum2 >> 16)
    sum1 = (sum1 & 0xFFFF) + (sum1 >> 16)
    sum2 = (sum2 & 0xFFFF) + (sum2 >> 16)
    return (sum2 << 16) | sum1
