"""Checksums used for corruption detection.

The paper's detection apparatus (section 3.2) "maintains a checksum of each
memory block in the file cache"; unintentional changes show up as an
inconsistent checksum.  We use Fletcher-32, which is cheap, has no
cryptographic pretensions (matching 1996 practice — the Recovery Box used a
similar scheme) and detects the byte-level corruptions our fault injector
produces.
"""

from __future__ import annotations


def fletcher32(data: bytes | bytearray | memoryview) -> int:
    """Return the Fletcher-32 checksum of ``data``.

    Operates on 16-bit words; an odd trailing byte is zero-padded, which is
    the conventional behaviour.
    """
    view = memoryview(bytes(data))
    if len(view) % 2:
        view = memoryview(bytes(view) + b"\x00")
    sum1 = 0xFFFF
    sum2 = 0xFFFF
    index = 0
    length = len(view) // 2
    while index < length:
        # Process in blocks small enough that the sums cannot overflow
        # before reduction (360 words is the classical bound).
        block_end = min(index + 359, length)
        while index < block_end:
            word = view[2 * index] | (view[2 * index + 1] << 8)
            sum1 += word
            sum2 += sum1
            index += 1
        sum1 = (sum1 & 0xFFFF) + (sum1 >> 16)
        sum2 = (sum2 & 0xFFFF) + (sum2 >> 16)
    sum1 = (sum1 & 0xFFFF) + (sum1 >> 16)
    sum2 = (sum2 & 0xFFFF) + (sum2 >> 16)
    return (sum2 << 16) | sum1
