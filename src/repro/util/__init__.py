"""Small shared utilities: checksums, deterministic PRNGs, byte packing."""

from repro.util.checksum import fletcher32
from repro.util.prng import DeterministicRandom, pattern_bytes

__all__ = ["fletcher32", "DeterministicRandom", "pattern_bytes"]
