"""Deterministic pseudo-random generators.

The paper's memTest workload is driven by "a pseudo-random number generator"
so that, after a crash, the workload can be *replayed* to the exact point of
the crash and the correct contents of every file reconstructed.  That
property demands a PRNG that is fully deterministic given a seed and whose
state can be advanced op by op; we implement a small, self-contained 64-bit
SplitMix64/xorshift combination rather than relying on ``random.Random``
internals staying stable across Python versions.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def _splitmix64(state: int) -> tuple[int, int]:
    """Advance a SplitMix64 state; return ``(new_state, output)``."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return state, z ^ (z >> 31)


class DeterministicRandom:
    """A seeded, replayable 64-bit PRNG with a tiny ``random``-like API."""

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64
        # Warm up so that small seeds do not produce correlated streams.
        for _ in range(2):
            self._state, _ = _splitmix64(self._state)

    def next_u64(self) -> int:
        self._state, out = _splitmix64(self._state)
        return out

    def randrange(self, stop: int) -> int:
        """Return an integer in ``[0, stop)``; ``stop`` must be positive."""
        if stop <= 0:
            raise ValueError("randrange stop must be positive")
        return self.next_u64() % stop

    def randint(self, low: int, high: int) -> int:
        """Return an integer in ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError("randint requires low <= high")
        return low + self.randrange(high - low + 1)

    def random(self) -> float:
        """Return a float in ``[0, 1)``."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def choice(self, seq):
        if not seq:
            raise ValueError("choice from empty sequence")
        return seq[self.randrange(len(seq))]

    def weighted_choice(self, items, weights):
        """Pick from ``items`` with the given relative ``weights``."""
        if len(items) != len(weights) or not items:
            raise ValueError("items and weights must be equal-length, non-empty")
        total = float(sum(weights))
        point = self.random() * total
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if point < acc:
                return item
        return items[-1]

    def shuffle(self, seq: list) -> None:
        """Fisher-Yates shuffle in place."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randrange(i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def bytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        out = bytearray()
        while len(out) < n:
            out += self.next_u64().to_bytes(8, "little")
        return bytes(out[:n])

    def fork(self, tag: int) -> "DeterministicRandom":
        """Return an independent child stream keyed by ``tag``."""
        return DeterministicRandom(self._state ^ (tag * 0x9E3779B97F4A7C15) ^ 0xA5A5A5A5)


def pattern_bytes(file_key: int, offset: int, length: int) -> bytes:
    """Deterministic file contents used by memTest.

    Every byte of every file is a pure function of ``(file_key, offset)``,
    so the expected contents of any byte range can be recomputed at any time
    without storing the data — exactly the property memTest needs to check a
    restored file cache image against ground truth.
    """
    if length <= 0:
        return b""
    out = bytearray(length)
    # Generate 8 bytes at a time from a hash of (file_key, block index).
    start_block = offset // 8
    end_block = (offset + length - 1) // 8
    pos = 0
    for block in range(start_block, end_block + 1):
        _, word = _splitmix64((file_key * 0x100000001B3 + block) & _MASK64)
        chunk = word.to_bytes(8, "little")
        lo = max(offset, block * 8)
        hi = min(offset + length, block * 8 + 8)
        out[pos : pos + (hi - lo)] = chunk[lo - block * 8 : hi - block * 8]
        pos += hi - lo
    return bytes(out)
