"""Observability: the flight recorder and crash forensics.

The Rio paper treats each crash trial as a black box — footnote 2 of
section 3.3 declares tracing how faults propagate "beyond the scope of
this paper".  In a simulation nothing is out of scope: every layer of
the stack emits :class:`Event` records into a bounded
:class:`FlightRecorder`, and :mod:`repro.obs.forensics` links one
trial's injection record to the first divergent store, the crash event
and the detector evidence.
"""

from repro.obs.events import (
    BOUNDARY_EVENT_KEYS,
    DEFAULT_EVENT_CAP,
    Event,
    FlightRecorder,
    events_digest,
    is_boundary,
)
from repro.obs.forensics import (
    ForensicReport,
    NoDivergence,
    build_forensic_report,
    first_divergence,
    format_forensic_report,
)

__all__ = [
    "BOUNDARY_EVENT_KEYS",
    "DEFAULT_EVENT_CAP",
    "Event",
    "FlightRecorder",
    "events_digest",
    "is_boundary",
    "ForensicReport",
    "NoDivergence",
    "build_forensic_report",
    "first_divergence",
    "format_forensic_report",
]
