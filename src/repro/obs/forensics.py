"""Per-trial crash forensics over flight-recorder streams.

Links a crash trial's injection record to the first kernel store it
influenced, the crash event, and the corruption evidence each detector
produced.  The rigorous attribution path re-runs the *same* trial
configuration with injection suppressed (a clean baseline stopped at
the faulted trial's op count) and diffs the two event streams:

* injector-origin events (kinds ``trial`` and ``fault``) are filtered
  out of both streams — by construction the baseline has none;
* events compare on ``(kind, op, payload)``.  ``vtime`` is excluded:
  after a text-flip the patched/unpatched instruction mix changes
  interpreted timing, and a timing skew is not data corruption;
* the first differing position is the **first divergence**, and the
  first store-class event at or after it is the **first divergent
  store** — the earliest point where the fault demonstrably reached
  kernel state (a cache write, a page flush, a registry update, or a
  trap that *stopped* such a store).

Without a baseline a documented heuristic applies: the first store-class
event after the injection marker, or the crash event itself when the
trial died in a trap before touching the cache.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Kinds that only the injected run can contain (filtered before diffing).
INJECTOR_KINDS = ("trial", "fault")

#: (kind, op) pairs that represent a kernel store reaching — or being
#: stopped on its way to — file-cache state.
STORE_EVENT_KEYS = {
    ("trap", "protection"),
    ("trap", "kseg"),
    ("trap", "patch"),
    ("trap", "machine-check"),
    ("cache", "write"),
    ("cache", "fill"),
    ("wb", "flush"),
    ("registry", "update"),
    ("shadow", "end-write"),
}


@dataclass(frozen=True)
class NoDivergence:
    """Typed "there is no divergent store" outcome.

    Some trials legitimately have no first divergent store: the crash
    fired at event index 0 with no prior store (the crash-point
    explorer's first boundary), the fault never influenced any recorded
    operation, or no fault was injected at all.  Reporting ``None``
    for those renders an empty section indistinguishable from "the
    builder forgot to look"; this type names the reason instead.
    """

    reason: str

    def to_json_dict(self) -> Dict[str, Any]:
        return {"no_divergence": True, "reason": self.reason}


def _store_to_json(value) -> Optional[Dict[str, Any]]:
    """Serialize a first-divergent-store slot (event dict or typed miss)."""
    if isinstance(value, NoDivergence):
        return value.to_json_dict()
    return value


def _comparable(event: Dict[str, Any]) -> Tuple[str, str, str]:
    """Diff key for one serialized event: kind, op, canonical payload."""
    return (
        event["kind"],
        event["op"],
        json.dumps(event.get("payload", {}), sort_keys=True, separators=(",", ":")),
    )


def _filtered(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [e for e in events if e["kind"] not in INJECTOR_KINDS]


def first_divergence(
    events: List[Dict[str, Any]], baseline: List[Dict[str, Any]]
) -> Tuple[Optional[int], Optional[Dict[str, Any]]]:
    """First position where the faulted stream departs from the baseline.

    Returns ``(index, event)`` where ``index`` is into the
    injector-filtered faulted stream and ``event`` is the faulted
    event at that position (``None`` when the faulted stream ended
    early — e.g. the crash truncated it while the baseline ran on).
    Returns ``(None, None)`` for identical streams.
    """
    f, b = _filtered(events), _filtered(baseline)
    for i in range(min(len(f), len(b))):
        if _comparable(f[i]) != _comparable(b[i]):
            return i, f[i]
    if len(f) != len(b):
        i = min(len(f), len(b))
        return i, (f[i] if i < len(f) else None)
    return None, None


@dataclass
class ForensicReport:
    """The causal chain for one crash trial, ready to format."""

    system: str
    fault: str
    seed: int
    #: the ``trial/inject`` marker event, if the trial got that far
    injection: Optional[Dict[str, Any]]
    #: serialized ``fault`` events: what the injector actually did
    fault_events: List[Dict[str, Any]]
    #: first event differing from the clean baseline (or heuristic pick)
    first_divergence: Optional[Dict[str, Any]]
    #: first store-class event at/after the divergence, or a typed
    #: :class:`NoDivergence` naming why none exists (never a bare None)
    first_divergent_store: Any
    #: "baseline-diff" | "heuristic" | "none"
    divergence_basis: str
    crash: Optional[Dict[str, Any]]
    detectors: List[str]
    events_total: int
    notes: List[str] = field(default_factory=list)
    #: sha256 of the post-recovery disk image (when the trial ran dissect)
    image_sha256: Optional[str] = None
    #: serialized findings from the independent dissect verifier
    dissect_findings: List[Dict[str, Any]] = field(default_factory=list)
    #: serialized ``DivergenceReport`` comparing fsck and dissect verdicts
    divergence: Optional[Dict[str, Any]] = None

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "system": self.system,
            "fault": self.fault,
            "seed": self.seed,
            "injection": self.injection,
            "fault_events": self.fault_events,
            "first_divergence": self.first_divergence,
            "first_divergent_store": _store_to_json(self.first_divergent_store),
            "divergence_basis": self.divergence_basis,
            "crash": self.crash,
            "detectors": self.detectors,
            "events_total": self.events_total,
            "notes": self.notes,
            "image_sha256": self.image_sha256,
            "dissect_findings": self.dissect_findings,
            "divergence": self.divergence,
        }


def _detector_evidence(result: Dict[str, Any]) -> List[str]:
    """One line per detector that found (or prevented) corruption."""
    out: List[str] = []
    problems = result.get("memtest_problems") or []
    if problems:
        first = problems[0]
        out.append(
            f"memtest: {len(problems)} file problem(s); first: "
            f"{first.get('path', '?')} — {first.get('problem', '?')}"
        )
    mismatches = result.get("checksum_mismatches") or 0
    if mismatches:
        out.append(f"registry checksums: {mismatches} mismatched slot(s)")
    if result.get("static_copy_mismatch"):
        out.append("static copies: contents differ from pristine originals")
    if result.get("recovery_failed"):
        out.append("recovery: warm reboot / fsck could not restore the fs")
    if result.get("protection_trap"):
        out.append("protection trap: the wild store was stopped before the cache")
    divergence = result.get("divergence")
    if divergence and not divergence.get("agreed", True):
        out.append(
            "independent verifier: dissect disagreed with fsck about the "
            "post-recovery image (see the second-opinion section)"
        )
    return out


def _first_store_at_or_after(
    events: List[Dict[str, Any]], start_index: int
) -> Optional[Dict[str, Any]]:
    for ev in events[start_index:]:
        if (ev["kind"], ev["op"]) in STORE_EVENT_KEYS:
            return ev
    return None


def build_forensic_report(
    result: Dict[str, Any],
    events: List[Dict[str, Any]],
    baseline: Optional[List[Dict[str, Any]]] = None,
) -> ForensicReport:
    """Build the causal-chain report for one serialized trial.

    ``result`` is a ``CrashTestResult.to_json_dict()`` dict (must carry
    its ``config``), ``events`` the trial's serialized event stream,
    ``baseline`` the optional injection-suppressed re-run's stream.
    Pure function of its inputs — unit-testable on synthetic streams.
    """
    config = result.get("config") or {}
    notes: List[str] = []

    injection = next(
        (e for e in events if e["kind"] == "trial" and e["op"] == "inject"), None
    )
    fault_events = [e for e in events if e["kind"] == "fault"]
    crash = next((e for e in events if e["kind"] == "crash"), None)

    divergence: Optional[Dict[str, Any]] = None
    divergent_store: Any = None
    basis = "none"
    no_divergence_reason: Optional[str] = None

    if baseline is not None:
        idx, div = first_divergence(events, baseline)
        if idx is not None:
            basis = "baseline-diff"
            divergence = div
            divergent_store = _first_store_at_or_after(_filtered(events), idx)
            no_divergence_reason = (
                "no store-class event at or after the divergence point"
            )
            if div is None:
                notes.append(
                    "faulted stream ended before the baseline's — the crash "
                    "truncated it; divergence index is the truncation point"
                )
        else:
            no_divergence_reason = (
                "event stream identical to the clean baseline — the fault "
                "never influenced any recorded operation"
            )
            notes.append(no_divergence_reason)
    elif injection is not None:
        basis = "heuristic"
        notes.append(
            "no baseline: first store-class event after the injection marker "
            "(the rigorous attribution needs a clean re-run diff)"
        )
        start = events.index(injection) + 1
        trap = next(
            (
                e
                for e in events[start:]
                if e["kind"] == "trap" and (e["kind"], e["op"]) in STORE_EVENT_KEYS
            ),
            None,
        )
        divergent_store = trap or _first_store_at_or_after(events, start)
        divergence = divergent_store
        no_divergence_reason = (
            "no store-class event recorded after the injection marker"
        )
    else:
        # No fault was ever injected — e.g. a crash-point-explorer trial
        # or a trial that died before its injection op.
        if crash is not None:
            crash_pos = events.index(crash)
            if _first_store_at_or_after(events[:crash_pos], 0) is None:
                no_divergence_reason = (
                    f"crash at event index {crash['seq']} with no prior "
                    "store — nothing to attribute"
                )
            else:
                no_divergence_reason = (
                    "no fault was injected before the crash; the stores on "
                    "record are ordinary workload stores, not divergence"
                )
            notes.append("trial crashed before any fault was injected")
        else:
            no_divergence_reason = (
                "no fault injected and no crash recorded — a clean run"
            )

    if divergent_store is None and crash is not None and basis != "none":
        # Trap-flavoured crashes *are* the stopped store.
        divergent_store = crash
        notes.append("no store-class event recorded; the crash event stands in")
    if divergent_store is None:
        divergent_store = NoDivergence(
            no_divergence_reason or "no divergent store identified"
        )

    return ForensicReport(
        system=config.get("system", result.get("system", "?")),
        fault=str(config.get("fault_type", "?")),
        seed=int(config.get("seed", -1)),
        injection=injection,
        fault_events=fault_events,
        first_divergence=divergence,
        first_divergent_store=divergent_store,
        divergence_basis=basis,
        crash=crash,
        detectors=_detector_evidence(result),
        events_total=len(events),
        notes=notes,
        image_sha256=result.get("image_sha256"),
        dissect_findings=list(result.get("dissect_findings") or []),
        divergence=result.get("divergence"),
    )


def _fmt_event(ev) -> str:
    if ev is None:
        return "(none)"
    if isinstance(ev, NoDivergence):
        return f"(none: {ev.reason})"
    payload = ev.get("payload") or {}
    body = ", ".join(f"{k}={payload[k]}" for k in sorted(payload))
    return f"#{ev['seq']} {ev['kind']}/{ev['op']} @{ev['vtime']}ns" + (
        f" [{body}]" if body else ""
    )


def format_forensic_report(report: ForensicReport) -> str:
    lines = [
        f"trial: system={report.system} fault={report.fault} seed={report.seed}",
        f"  injection:        {_fmt_event(report.injection)}",
    ]
    for ev in report.fault_events:
        lines.append(f"    fault action:   {_fmt_event(ev)}")
    lines += [
        f"  first divergence: {_fmt_event(report.first_divergence)}"
        f" (basis: {report.divergence_basis})",
        f"  first divergent store: {_fmt_event(report.first_divergent_store)}",
        f"  crash:            {_fmt_event(report.crash)}",
    ]
    if report.detectors:
        lines.append("  detector evidence:")
        for line in report.detectors:
            lines.append(f"    - {line}")
    else:
        lines.append("  detector evidence: none (no corruption detected)")
    if report.image_sha256:
        verdict = "agreed" if (report.divergence or {}).get("agreed", True) else "DIVERGED"
        lines.append(
            f"  second opinion:   dissect scanned image {report.image_sha256[:16]} "
            f"({len(report.dissect_findings)} finding(s)); fsck/dissect {verdict}"
        )
        for finding in report.dissect_findings[:5]:
            lines.append(
                f"    - {finding.get('kind', '?')} at {finding.get('where', '?')}: "
                f"{finding.get('detail', '')}"
            )
        for detail in (report.divergence or {}).get("details", []):
            lines.append(f"    divergence: {detail}")
    for note in report.notes:
        lines.append(f"  note: {note}")
    lines.append(f"  events recorded: {report.events_total}")
    return "\n".join(lines)
