"""The flight recorder: a bounded structured event stream.

Every causally interesting point in the stack — fault injection,
protection traps, MMU toggles, syscall entry/exit, cache writes,
writeback, registry updates, panics, warm-reboot phases — emits an
:class:`Event` into the machine's :class:`FlightRecorder`.  The
recorder is disabled by default and designed so the disabled case costs
one attribute load and one truth test at each emission site (and
*nothing* in the interpreter hot loop, which never consults it):

    rec = self.recorder
    if rec is not None and rec.enabled:
        rec.emit("trap", "protection", address=vaddr)

Events carry only engine-independent facts.  Payloads must be plain
JSON values and must never include live bus statistics (the hot-path
engine settles its fetch counters in batches, so mid-call counter reads
would diverge between engines); page-content checksums are fine and are
exactly what lets forensics see *data* divergence.  Virtual time
(``vtime``) comes from the machine clock, which both engines advance
identically.

The ring is a ``collections.deque(maxlen=cap)``: appends are O(1) and
old events fall off the front once ``cap`` is reached; ``dropped``
counts how many were lost.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Default ring capacity.  A fault trial emits a few thousand events;
#: 64k leaves generous headroom without unbounded memory growth.
DEFAULT_EVENT_CAP = 65536

#: The crash-point boundary taxonomy: every ``(kind, op)`` whose
#: emission marks a store/flush/shadow-flip/registry/ack synchronization
#: point the crash-point explorer must crash at.  Each of these events
#: is emitted *before* (or atomically around) the state change it
#: names, so "crash at boundary N" means "the machine dies the instant
#: event N is recorded, before the store it announces lands":
#:
#: * ``cache/write``   — a file-cache page store (emitted pre-copy);
#: * ``cache/fill``    — a cache fill from disk;
#: * ``wb/flush``      — a writeback flush (emitted pre-disk-write);
#: * ``shadow/begin-write`` / ``shadow/end-write`` — the Rio guard's
#:   shadow-page flip around an in-place metadata write;
#: * ``registry/update`` — a registry-entry store (emitted pre-store);
#: * ``server/ack``    — the file service acknowledging a request (the
#:   durability promise the crash-consistency spec holds it to);
#: * ``backend/upload`` — the tiered store starting one block's upload
#:   transaction (emitted before the blob put);
#: * ``backend/commit`` — the upload's map flip (emitted before the map
#:   put, so a crash here strands at worst an orphan blob).
#:
#: Boundary identity is the event's ``seq`` — stable across re-runs
#: because both execution engines emit byte-identical streams.
BOUNDARY_EVENT_KEYS = (
    ("cache", "write"),
    ("cache", "fill"),
    ("wb", "flush"),
    ("shadow", "begin-write"),
    ("shadow", "end-write"),
    ("registry", "update"),
    ("server", "ack"),
    ("backend", "upload"),
    ("backend", "commit"),
)

_BOUNDARY_SET = frozenset(BOUNDARY_EVENT_KEYS)


def is_boundary(kind: str, op: str) -> bool:
    """True when ``(kind, op)`` is a crash-point boundary event."""
    return (kind, op) in _BOUNDARY_SET

#: The event taxonomy (the ``kind`` axis).  Documented in
#: INTERNALS.md "Observability"; kept here so tools can validate.
EVENT_KINDS = (
    "trial",     # campaign milestones: injection point reached
    "fault",     # injector activity: flips applied, armed hooks firing
    "trap",      # protection / machine-check traps out of the MMU or checker
    "mmu",       # KSEG-through-TLB and page/frame writability toggles
    "prot",      # protection-manager installs and write windows
    "crash",     # kernel go_down: kind, reason, panic_code
    "syscall",   # VFS entry/exit
    "cache",     # file-cache page writes and fills
    "wb",        # writeback: page flushes, fsync, policy-triggered flushes
    "shadow",    # Rio guard shadow-page flips around in-place writes
    "registry",  # registry entry updates
    "reboot",    # warm-reboot phases: dump, audit, metadata/UBC restore
    "server",    # file service: session opens, acks, rejects, crash
                 # detection, session rebinds, recovery audits
    "backend",   # tiered backing store: block uploads and map commits
)


@dataclass(frozen=True)
class Event:
    """One flight-recorder record.

    ``seq`` is a monotone per-recorder sequence number (survives ring
    eviction, so ``events[0].seq == dropped`` once the ring wraps),
    ``kind`` is one of :data:`EVENT_KINDS`, ``op`` a short operation
    label within the kind (syscall name, fault type, trap flavour,
    reboot phase), ``vtime`` the machine clock in ns, and ``payload`` a
    small JSON-serializable dict of engine-independent facts.
    """

    seq: int
    kind: str
    op: str
    vtime: int
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "op": self.op,
            "vtime": self.vtime,
            "payload": self.payload,
        }


def events_digest(events: Iterable[Dict[str, Any]]) -> str:
    """sha256 over the canonical JSON encoding of serialized events.

    Canonical: one compact, key-sorted JSON object per event, newline
    separated — byte-identical streams have identical digests, which is
    what the differential suite asserts across execution engines.
    """
    h = hashlib.sha256()
    for ev in events:
        h.update(json.dumps(ev, sort_keys=True, separators=(",", ":")).encode())
        h.update(b"\n")
    return h.hexdigest()


class FlightRecorder:
    """Bounded, low-overhead event stream for one machine.

    Created by :class:`repro.hw.Machine` and attached to the MMU and
    the memory bus (re-attached across :meth:`Machine.reset`, so one
    recorder spans a crash and the warm reboot that follows).  Disabled
    by default; ``start()`` clears the ring and begins recording.
    """

    def __init__(self, clock=None, cap: int = DEFAULT_EVENT_CAP) -> None:
        if cap <= 0:
            raise ValueError(f"FlightRecorder cap must be positive, got {cap}")
        self._clock = clock
        self.cap = cap
        self.enabled = False
        self._events: deque = deque(maxlen=cap)
        self._seq = 0
        self._crash_seq: Optional[int] = None
        self._crash_hook = None
        #: Constant key/values merged into every event's payload —
        #: e.g. the cluster sets ``{"shard": shard_id}`` so merged
        #: multi-shard streams stay attributable.  Empty costs nothing.
        self.static_tags: Dict[str, Any] = {}

    # -- lifecycle -----------------------------------------------------

    def start(self, cap: Optional[int] = None) -> None:
        """Clear the ring and begin recording (optionally resizing)."""
        if cap is not None:
            if cap <= 0:
                raise ValueError(f"FlightRecorder cap must be positive, got {cap}")
            self.cap = cap
            self._events = deque(maxlen=cap)
        self.clear()
        self.enabled = True

    def stop(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._events.clear()
        self._seq = 0

    # -- armed crash points --------------------------------------------

    def arm_crash(self, seq: int, hook) -> None:
        """Arm a one-shot crash point at event sequence number ``seq``.

        The instant the event with that ``seq`` is appended —
        *before* the store/flush/flip it announces takes effect —
        ``hook(event)`` runs with the crash point already disarmed.
        The crash-point explorer's hook brings the machine down (by
        raising a :class:`~repro.errors.SystemCrash` out of the
        emitting call site), turning every recorded boundary into a
        reachable, deterministic crash.  Because both execution
        engines emit byte-identical streams, the event at ``seq`` in a
        re-run is exactly the event at ``seq`` in the enumeration run.
        """
        if seq < 0:
            raise ValueError(f"crash seq must be non-negative, got {seq}")
        self._crash_seq = seq
        self._crash_hook = hook

    def disarm_crash(self) -> None:
        """Remove any armed crash point (idempotent)."""
        self._crash_seq = None
        self._crash_hook = None

    # -- recording -----------------------------------------------------

    def emit(self, kind: str, op: str, /, **payload: Any) -> None:
        """Append one event; no-op when disabled.

        ``kind`` and ``op`` are positional-only so payloads may reuse
        those key names (e.g. the cache's ``kind=`` payload field).
        Call sites should guard with ``rec is not None and rec.enabled``
        so payload kwargs are never even built when the recorder is off.
        """
        if not self.enabled:
            return
        vtime = self._clock.now_ns if self._clock is not None else 0
        if self.static_tags:
            payload = {**self.static_tags, **payload}
        event = Event(self._seq, kind, op, vtime, payload)
        self._events.append(event)
        self._seq += 1
        if self._crash_seq is not None and event.seq == self._crash_seq:
            hook = self._crash_hook
            self.disarm_crash()  # one-shot: recovery emissions must not re-fire
            hook(event)

    # -- reading -------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events lost to ring eviction (total emitted minus retained)."""
        return self._seq - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[Event]:
        return list(self._events)

    def to_json_list(self) -> List[Dict[str, Any]]:
        return [ev.to_json_dict() for ev in self._events]

    def digest(self) -> str:
        return events_digest(self.to_json_list())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (
            f"<FlightRecorder {state} {len(self._events)}/{self.cap} events"
            f" (+{self.dropped} dropped)>"
        )
