"""Workloads: memTest, Andrew, cp+rm, Sdet.

* :mod:`~repro.workloads.memtest` — the paper's synthetic
  corruption-detection workload: a PRNG-driven stream of file operations
  whose expected state can be *replayed* to the exact crash point and
  compared against what a reboot recovered (section 3.2).
* :mod:`~repro.workloads.andrew` — the Andrew benchmark [Howard88]:
  copy a source hierarchy, examine it, compile it (CPU-dominated).
* :mod:`~repro.workloads.cp_rm` — recursively copy then remove a source
  tree (I/O-dominated; the paper uses the 40 MB Digital Unix source).
* :mod:`~repro.workloads.sdet` — SPEC SDM Sdet: concurrent multi-user
  software-development scripts.

Workloads expose ``ops()`` generators of thunks so the reliability
campaign can interleave several of them (memTest plus four Andrews, as in
the paper) and inject faults between operations.
"""

from repro.workloads.memtest import MemTest, MemTestModel, MemTestParams, verify_against_model
from repro.workloads.andrew import AndrewBenchmark, AndrewParams
from repro.workloads.cp_rm import CpRmWorkload, CpRmParams
from repro.workloads.sdet import SdetWorkload, SdetParams
from repro.workloads.debit_credit import (
    DebitCreditParams,
    DebitCreditResult,
    DebitCreditWorkload,
)

__all__ = [
    "MemTest",
    "MemTestModel",
    "MemTestParams",
    "verify_against_model",
    "AndrewBenchmark",
    "AndrewParams",
    "CpRmWorkload",
    "CpRmParams",
    "SdetWorkload",
    "SdetParams",
    "DebitCreditParams",
    "DebitCreditResult",
    "DebitCreditWorkload",
]
