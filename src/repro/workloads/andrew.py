"""The Andrew benchmark [Howard88], scaled.

"Andrew creates and copies a source hierarchy; examines the hierarchy
using find, ls, du, grep, and wc; and compiles the source hierarchy."
Five phases: mkdir, copy, stat-scan, read-scan, compile.  The compile
phase is CPU-dominated (it is why Andrew shows the smallest spread across
file systems in Table 2): each compilation charges pure CPU time and then
writes a .o file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.hw.clock import NS_PER_MS
from repro.util.prng import DeterministicRandom, pattern_bytes


@dataclass
class AndrewParams:
    root: str = "/andrew"
    dirs: int = 4
    files_per_dir: int = 6
    file_bytes: int = 8 * 1024
    #: CPU time to "compile" one source file (the dominant cost; the
    #: paper's Andrew is "dominated by CPU-intensive compilation").
    compile_ms_per_file: int = 120
    #: Object file size as a fraction of source size (numerator/denominator).
    object_ratio: tuple = (1, 1)
    #: Compiler output is written in small chunks, one write() each —
    #: under a "sync" mount every chunk is a synchronous disk write,
    #: which is what separates write-through-on-write from
    #: write-through-on-close in Table 2.
    write_chunk: int = 512
    seed: int = 1234


class AndrewBenchmark:
    """One instance of the Andrew benchmark under a directory."""

    def __init__(self, vfs, kernel, params: AndrewParams | None = None) -> None:
        self.vfs = vfs
        self.kernel = kernel
        self.params = params or AndrewParams()
        self.rng = DeterministicRandom(self.params.seed)
        self.phase_times: dict[str, float] = {}

    # -- paths -------------------------------------------------------------

    def _src_dir(self, d: int) -> str:
        return f"{self.params.root}/src/dir{d}"

    def _copy_dir(self, d: int) -> str:
        return f"{self.params.root}/copy/dir{d}"

    def _files(self, d: int) -> list[str]:
        return [f"file{f}.c" for f in range(self.params.files_per_dir)]

    def _file_key(self, d: int, name: str) -> int:
        """Stable content key (no built-in hash(): PYTHONHASHSEED varies)."""
        key = self.params.seed
        for ch in f"{d}/{name}":
            key = (key * 1000003 + ord(ch)) & 0xFFFFFFFF
        return key

    # -- phases ----------------------------------------------------------------

    def phase_mkdir(self) -> None:
        vfs, p = self.vfs, self.params
        vfs.mkdir(p.root)
        vfs.mkdir(f"{p.root}/src")
        vfs.mkdir(f"{p.root}/copy")
        vfs.mkdir(f"{p.root}/obj")
        for d in range(p.dirs):
            vfs.mkdir(self._src_dir(d))
            vfs.mkdir(self._copy_dir(d))

    def phase_create_source(self) -> None:
        """Create the source hierarchy (part of phase 1 in the original)."""
        p = self.params
        for d in range(p.dirs):
            for name in self._files(d):
                path = f"{self._src_dir(d)}/{name}"
                fd = self.vfs.open(path, create=True)
                data = pattern_bytes(self._file_key(d, name), 0, p.file_bytes)
                for start in range(0, len(data), p.write_chunk):
                    self.vfs.write(fd, data[start : start + p.write_chunk])
                self.vfs.close(fd)

    def phase_copy(self) -> None:
        p = self.params
        for d in range(p.dirs):
            for name in self._files(d):
                src = self.vfs.open(f"{self._src_dir(d)}/{name}")
                data = self.vfs.read(src, p.file_bytes)
                self.vfs.close(src)
                dst = self.vfs.open(f"{self._copy_dir(d)}/{name}", create=True)
                self.vfs.write(dst, data)
                self.vfs.close(dst)

    def phase_stat_scan(self) -> None:
        """find / ls / du: walk and stat everything."""
        p = self.params
        for d in range(p.dirs):
            for directory in (self._src_dir(d), self._copy_dir(d)):
                for name in self.vfs.readdir(directory):
                    self.vfs.stat(f"{directory}/{name}")

    def phase_read_scan(self) -> None:
        """grep / wc: read every copied file."""
        p = self.params
        for d in range(p.dirs):
            for name in self._files(d):
                fd = self.vfs.open(f"{self._copy_dir(d)}/{name}")
                while self.vfs.read(fd, 4096):
                    pass
                self.vfs.close(fd)

    def phase_compile(self) -> None:
        p = self.params
        for d in range(p.dirs):
            for name in self._files(d):
                fd = self.vfs.open(f"{self._copy_dir(d)}/{name}")
                source = self.vfs.read(fd, p.file_bytes)
                self.vfs.close(fd)
                if self.kernel.config.charge_time:
                    self.kernel.clock.consume(p.compile_ms_per_file * NS_PER_MS)
                num, den = p.object_ratio
                obj = source[: len(source) * num // den]
                out = self.vfs.open(
                    f"{p.root}/obj/{name}.d{d}.o".replace("file", "f"), create=True
                )
                for start in range(0, len(obj), p.write_chunk):
                    self.vfs.write(out, obj[start : start + p.write_chunk])
                self.vfs.close(out)

    # -- drivers ---------------------------------------------------------------------

    PHASES = (
        ("mkdir", phase_mkdir),
        ("create", phase_create_source),
        ("copy", phase_copy),
        ("stat", phase_stat_scan),
        ("read", phase_read_scan),
        ("compile", phase_compile),
    )

    def run(self) -> float:
        """Run all phases; returns elapsed virtual seconds."""
        clock = self.kernel.clock
        start = clock.now_ns
        for name, phase in self.PHASES:
            t0 = clock.now_ns
            phase(self)
            self.phase_times[name] = (clock.now_ns - t0) / 1e9
        return (clock.now_ns - start) / 1e9

    def ops(self) -> Iterator:
        """Fine-grained thunk stream for the campaign interleaver: runs
        the benchmark one operation at a time, then loops forever.  Only
        the source hierarchy is exercised (the copy/compile phases need
        whole-phase ordering the interleaver does not provide)."""
        while True:
            yield self.phase_mkdir_ops_guard
            for d in range(self.params.dirs):
                for name in self._files(d):
                    yield self._make_file_op(d, name)
            yield self._stat_src_pass

    def phase_mkdir_ops_guard(self) -> None:
        if not self.vfs.exists(self.params.root):
            self.phase_mkdir()

    def _stat_src_pass(self) -> None:
        for d in range(self.params.dirs):
            for name in self.vfs.readdir(self._src_dir(d)):
                self.vfs.stat(f"{self._src_dir(d)}/{name}")

    def _make_file_op(self, d: int, name: str):
        def op() -> None:
            path = f"{self._src_dir(d)}/{name}"
            key = self._file_key(d, name)
            if not self.vfs.exists(path):
                fd = self.vfs.open(path, create=True)
                self.vfs.write(fd, pattern_bytes(key, 0, self.params.file_bytes))
                self.vfs.close(fd)
            else:
                fd = self.vfs.open(path)
                self.vfs.read(fd, self.params.file_bytes)
                self.vfs.close(fd)

        return op
