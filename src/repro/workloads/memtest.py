"""memTest: the repeatable corruption-detection workload (section 3.2).

"memTest generates a repeatable stream of file and directory creations,
deletions, reads, and writes ... Actions and data in memTest are
controlled by a pseudo-random number generator.  After each step, memTest
records its progress in a status file across the network.  After the
system crashes, we reboot the system and run memTest until it reaches the
point when the system crashed.  This reconstructs the correct contents of
the test directory at the time of the crash, and we then compare the
reconstructed contents with the file cache image in memory."

Implementation split:

* :class:`MemTestModel` — the pure expected-state machine.  Given a seed
  it deterministically generates operation ``k`` and tracks what the file
  tree *should* contain.  Replaying a fresh model to the recorded progress
  reconstructs ground truth without touching any file system.
* :class:`MemTest` — drives a VFS with the model's operations, recording
  progress after each completed step (the "status file across the
  network" is the harness-side ``progress`` attribute, which survives the
  simulated crash because it lives outside the simulated machine).
* :func:`verify_against_model` — the post-reboot comparison.  The
  operation that was in flight at crash time is allowed to be absent,
  partially applied, or fully applied; everything else must match
  exactly.

File contents are a pure function of ``(file_key, offset)``
(:func:`repro.util.prng.pattern_bytes`), so any byte of any expected file
can be recomputed at verification time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import FileSystemError
from repro.util.prng import DeterministicRandom, pattern_bytes


@dataclass
class MemTestParams:
    """Scaled-down defaults; the paper used a 100 MB file set."""

    root: str = "/memtest"
    max_files: int = 24
    max_dirs: int = 4
    max_file_bytes: int = 128 * 1024
    max_io_bytes: int = 16 * 1024
    #: Relative operation mix
    #: (create, delete, write, read, mkdir, rmdir, rename).
    weights: tuple = (20, 8, 40, 20, 4, 2, 5)
    #: fsync after every write — used for the write-through (disk-based)
    #: reliability runs, which would otherwise lose async data (§3.3).
    fsync_every_write: bool = False


@dataclass(frozen=True)
class MemTestOp:
    """One generated operation (pure description, no side effects)."""

    index: int
    kind: str  # create | delete | write | read | mkdir | rmdir | rename
    path: str
    path2: str = ""  # rename destination
    file_key: int = 0
    offset: int = 0
    length: int = 0


@dataclass
class ExpectedFile:
    file_key: int
    #: Written extents: list of (offset, length) in application order.
    extents: list = field(default_factory=list)
    size: int = 0

    def content(self) -> bytes:
        """Materialise the expected contents."""
        data = bytearray(self.size)
        for offset, length in self.extents:
            data[offset : offset + length] = pattern_bytes(self.file_key, offset, length)
        return bytes(data)


class MemTestModel:
    """The deterministic expected-state machine."""

    def __init__(self, seed: int, params: MemTestParams | None = None) -> None:
        self.params = params or MemTestParams()
        self.rng = DeterministicRandom(seed)
        self.files: dict[str, ExpectedFile] = {}
        self.dirs: list[str] = [self.params.root]
        self.ops_generated = 0
        self._key_counter = seed << 20

    # -- generation ---------------------------------------------------------

    def next_op(self) -> MemTestOp:
        """Generate operation ``ops_generated`` and apply it to the
        expected state."""
        params = self.params
        kinds = ["create", "delete", "write", "read", "mkdir", "rmdir", "rename"]
        kind = self.rng.weighted_choice(kinds, list(params.weights))

        # Degrade gracefully when a kind is impossible right now.
        if kind in ("delete", "write", "read", "rename") and not self.files:
            kind = "create"
        if kind == "create" and len(self.files) >= params.max_files:
            kind = "write" if self.files else "mkdir"
        if kind == "mkdir" and len(self.dirs) >= params.max_dirs:
            kind = "write" if self.files else "create"
        if kind == "rmdir":
            empty = [
                d
                for d in self.dirs
                if d != params.root
                and not any(f.startswith(d + "/") for f in self.files)
                and not any(x != d and x.startswith(d + "/") for x in self.dirs)
            ]
            if not empty:
                kind = "read" if self.files else "create"

        index = self.ops_generated
        op: MemTestOp
        if kind == "create":
            parent = self.rng.choice(self.dirs)
            name = f"f{index:06d}"
            path = f"{parent}/{name}"
            self._key_counter += 1
            op = MemTestOp(index, "create", path, file_key=self._key_counter)
            self.files[path] = ExpectedFile(file_key=self._key_counter)
        elif kind == "delete":
            path = self.rng.choice(sorted(self.files))
            op = MemTestOp(index, "delete", path)
            del self.files[path]
        elif kind == "write":
            path = self.rng.choice(sorted(self.files))
            expected = self.files[path]
            offset = self.rng.randrange(max(1, params.max_file_bytes - params.max_io_bytes))
            length = self.rng.randint(1, params.max_io_bytes)
            op = MemTestOp(
                index, "write", path,
                file_key=expected.file_key, offset=offset, length=length,
            )
            expected.extents.append((offset, length))
            expected.size = max(expected.size, offset + length)
        elif kind == "read":
            path = self.rng.choice(sorted(self.files))
            expected = self.files[path]
            offset = self.rng.randrange(max(1, expected.size or 1))
            length = self.rng.randint(1, params.max_io_bytes)
            op = MemTestOp(
                index, "read", path,
                file_key=expected.file_key, offset=offset, length=length,
            )
        elif kind == "rename":
            path = self.rng.choice(sorted(self.files))
            parent = self.rng.choice(self.dirs)
            path2 = f"{parent}/r{index:06d}"
            op = MemTestOp(index, "rename", path, path2=path2)
            self.files[path2] = self.files.pop(path)
        elif kind == "mkdir":
            parent = self.rng.choice(self.dirs)
            path = f"{parent}/d{index:06d}"
            op = MemTestOp(index, "mkdir", path)
            self.dirs.append(path)
        else:  # rmdir
            path = self.rng.choice(sorted(empty))
            op = MemTestOp(index, "rmdir", path)
            self.dirs.remove(path)
        self.ops_generated += 1
        return op

    @classmethod
    def replay(
        cls, seed: int, progress: int, params: MemTestParams | None = None
    ) -> tuple["MemTestModel", Optional[MemTestOp]]:
        """Reconstruct expected state after ``progress`` completed ops.

        Returns the model advanced through operation ``progress - 1``,
        plus the next (in-flight-at-crash) operation, whose effects may be
        partial on the recovered file system.
        """
        model = cls(seed, params)
        for _ in range(progress):
            model.next_op()
        # Peek at the in-flight op without losing determinism by forking
        # a replica (cheaper than deep-copying internal state).
        replica = cls(seed, params)
        for _ in range(progress):
            replica.next_op()
        in_flight = replica.next_op()
        return model, in_flight


class MemTest:
    """Drives a VFS with the model's operations."""

    def __init__(self, vfs, seed: int, params: MemTestParams | None = None) -> None:
        self.vfs = vfs
        self.params = params or MemTestParams()
        self.model = MemTestModel(seed, self.params)
        self.seed = seed
        #: The "status file across the network": number of operations
        #: fully completed.  Lives harness-side, so it survives crashes.
        self.progress = 0
        self.read_mismatches: list[MemTestOp] = []

    def setup(self) -> None:
        if not self.vfs.exists(self.params.root):
            self.vfs.mkdir(self.params.root)

    def step(self) -> MemTestOp:
        """Execute one operation; bump progress only when it completes."""
        op = self.model.next_op()
        self._apply(op)
        self.progress += 1
        return op

    def _apply(self, op: MemTestOp) -> None:
        vfs = self.vfs
        if op.kind == "create":
            fd = vfs.open(op.path, create=True)
            vfs.close(fd)
        elif op.kind == "delete":
            vfs.unlink(op.path)
        elif op.kind == "write":
            fd = vfs.open(op.path)
            vfs.pwrite(fd, pattern_bytes(op.file_key, op.offset, op.length), op.offset)
            if self.params.fsync_every_write:
                vfs.fsync(fd)
            vfs.close(fd)
        elif op.kind == "read":
            fd = vfs.open(op.path)
            data = vfs.pread(fd, op.length, op.offset)
            vfs.close(fd)
            # An online consistency check: reads must observe the
            # deterministic pattern wherever extents were written.
            expected = self.model.files.get(op.path)
            if expected is not None:
                want = expected.content()[op.offset : op.offset + op.length]
                if data != want[: len(data)]:
                    self.read_mismatches.append(op)
        elif op.kind == "rename":
            vfs.rename(op.path, op.path2)
        elif op.kind == "mkdir":
            vfs.mkdir(op.path)
        elif op.kind == "rmdir":
            vfs.rmdir(op.path)

    def ops(self) -> Iterator:
        """Endless stream of thunks for the campaign interleaver."""
        while True:
            yield self.step


@dataclass
class CorruptionRecord:
    path: str
    problem: str  # missing | extra | size | content | unreadable


def verify_against_model(
    fs,
    model: MemTestModel,
    in_flight: Optional[MemTestOp] = None,
) -> list[CorruptionRecord]:
    """Compare a recovered file system against reconstructed ground truth.

    The in-flight operation's target path is exempted from strict checks
    (its effects may legitimately be absent, partial, or complete); every
    other difference is corruption.
    """
    problems: list[CorruptionRecord] = []
    exempt = set()
    if in_flight is not None:
        exempt.add(in_flight.path)
        if in_flight.path2:
            exempt.add(in_flight.path2)
    root = model.params.root

    # Expected files must exist with exactly the expected bytes.
    for path, expected in sorted(model.files.items()):
        if path in exempt:
            continue
        try:
            if not fs.exists(path):
                problems.append(CorruptionRecord(path, "missing"))
                continue
            ino = fs.namei(path)
            actual_size = fs.size_of(ino)
            want = expected.content()
            if actual_size != len(want):
                problems.append(CorruptionRecord(path, "size"))
                continue
            if fs.read(ino, 0, len(want)) != want:
                problems.append(CorruptionRecord(path, "content"))
        except FileSystemError:
            problems.append(CorruptionRecord(path, "unreadable"))

    # Expected directories must exist; unexpected entries are corruption.
    expected_paths = set(model.files) | set(model.dirs)
    try:
        actual = _walk(fs, root)
    except FileSystemError:
        return problems + [CorruptionRecord(root, "unreadable")]
    for path in sorted(actual - expected_paths - exempt):
        # fsck may legitimately reconnect things under lost+found, which
        # lives outside the memTest root; anything else here is wrong.
        problems.append(CorruptionRecord(path, "extra"))
    for path in sorted(set(model.dirs) - actual - {root} - exempt):
        problems.append(CorruptionRecord(path, "missing"))
    return problems


def _walk(fs, root: str) -> set[str]:
    """All paths under ``root`` (excluding the root itself)."""
    seen: set[str] = set()
    stack = [root]
    while stack:
        current = stack.pop()
        for name in fs.readdir(current):
            path = f"{current}/{name}"
            seen.add(path)
            try:
                ino = fs.namei(path)
            except FileSystemError:
                continue
            node = fs.iget(ino) if hasattr(fs, "iget") else fs.stat(path)
            if getattr(node, "ftype", None) is not None and node.ftype.name == "DIRECTORY":
                stack.append(path)
    return seen
