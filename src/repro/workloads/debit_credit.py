"""A debit/credit (TPC-A-style) transaction workload.

Two of the paper's threads meet here:

* the motivation — "transaction processing applications view transactions
  as committed only when data is written to disk", which chains their
  throughput to the disk; on Rio a synchronous commit is a memory write;
* the related-work comparison — "Sullivan and Stonebraker measure the
  overhead of 'expose page' to be 7% on a debit/credit benchmark.  The
  overhead of Rio's protection mechanism, which is negligible, is lower
  for two reasons" (no syscall per protection change; bigger writes
  amortizing each window).

Each transaction reads an account record, updates it, appends a history
record, and commits (fsync).  Records are small — the adversarial case
for per-write protection-window overhead.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.util.prng import DeterministicRandom

RECORD = struct.Struct("<QQQ")  # account id, balance, update count
RECORD_SIZE = 64  # padded, like a real slotted record


@dataclass
class DebitCreditParams:
    accounts: int = 256
    transactions: int = 400
    history_bytes: int = 48
    seed: int = 31415


@dataclass
class DebitCreditResult:
    seconds: float
    transactions: int
    aborted: int = 0

    @property
    def tps(self) -> float:
        return self.transactions / self.seconds if self.seconds > 0 else float("inf")


class DebitCreditWorkload:
    """Runs against a VFS; commit semantics come from the write policy."""

    def __init__(self, vfs, kernel, params: DebitCreditParams | None = None) -> None:
        self.vfs = vfs
        self.kernel = kernel
        self.params = params or DebitCreditParams()
        self.rng = DeterministicRandom(self.params.seed)
        self._accounts_fd: int | None = None
        self._history_fd: int | None = None
        self._history_off = 0

    def setup(self) -> None:
        """Create and populate the accounts table (untimed)."""
        charged = self.kernel.config.charge_time
        self.kernel.config.charge_time = False
        self.kernel.klib.charge_time = False
        try:
            self.vfs.mkdir("/bank")
            fd = self.vfs.open("/bank/accounts", create=True)
            table = bytearray()
            for account in range(self.params.accounts):
                record = RECORD.pack(account, 1000, 0)
                table += record + b"\x00" * (RECORD_SIZE - len(record))
            self.vfs.write(fd, bytes(table))
            self.vfs.fsync(fd)
            self.vfs.close(fd)
            fd = self.vfs.open("/bank/history", create=True)
            self.vfs.close(fd)
        finally:
            self.kernel.config.charge_time = charged
            self.kernel.klib.charge_time = charged

    def _open_files(self) -> None:
        if self._accounts_fd is None:
            self._accounts_fd = self.vfs.open("/bank/accounts")
            self._history_fd = self.vfs.open("/bank/history")

    def run_transaction(self) -> None:
        """One debit/credit: read-modify-write a record + history append +
        synchronous commit."""
        self._open_files()
        account = self.rng.randrange(self.params.accounts)
        delta = self.rng.randint(-50, 50)
        offset = account * RECORD_SIZE
        raw = self.vfs.pread(self._accounts_fd, RECORD.size, offset)
        acct_id, balance, updates = RECORD.unpack(raw)
        record = RECORD.pack(acct_id, (balance + delta) & (1 << 64) - 1, updates + 1)
        self.vfs.pwrite(self._accounts_fd, record, offset)
        history = record[:16] + self.rng.bytes(self.params.history_bytes - 16)
        self.vfs.pwrite(self._history_fd, history, self._history_off)
        self._history_off += self.params.history_bytes
        # Commit: the transaction is durable only when fsync returns.
        self.vfs.fsync(self._accounts_fd)
        self.vfs.fsync(self._history_fd)

    def run(self) -> DebitCreditResult:
        clock = self.kernel.clock
        start = clock.now_ns
        for _ in range(self.params.transactions):
            self.run_transaction()
        for fd in (self._accounts_fd, self._history_fd):
            if fd is not None:
                self.vfs.close(fd)
        self._accounts_fd = self._history_fd = None
        return DebitCreditResult(
            seconds=(clock.now_ns - start) / 1e9,
            transactions=self.params.transactions,
        )

    def verify(self) -> bool:
        """All balances account for all updates (sum preserved modulo the
        recorded deltas; here: record structure intact and counts sane)."""
        fd = self.vfs.open("/bank/accounts")
        ok = True
        for account in range(self.params.accounts):
            raw = self.vfs.pread(fd, RECORD.size, account * RECORD_SIZE)
            acct_id, _balance, updates = RECORD.unpack(raw)
            if acct_id != account or updates > self.params.transactions:
                ok = False
        self.vfs.close(fd)
        return ok
