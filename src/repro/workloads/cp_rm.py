"""cp+rm: recursively copy then recursively remove a source tree.

The paper uses the 40 MB Digital Unix source tree; the workload here
generates a synthetic tree of the configured size on the file system
under test (untimed), then times the two phases separately, matching the
"81 (76+5)"-style cp+rm cells of Table 2.

cp+rm is the most I/O-intensive of the three workloads — it is where
write-through systems lose by the largest factor and where Rio's
remaining gap to MFS (reading the source from disk the first time) shows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.prng import DeterministicRandom, pattern_bytes


@dataclass
class CpRmParams:
    src_root: str = "/src"
    dst_root: str = "/dst"
    dirs: int = 16
    files_per_dir: int = 8
    #: Mean file size; actual sizes vary 0.5x-1.5x around it.
    mean_file_bytes: int = 32 * 1024
    seed: int = 77

    @property
    def approx_total_bytes(self) -> int:
        return self.dirs * self.files_per_dir * self.mean_file_bytes


@dataclass
class CpRmResult:
    cp_seconds: float
    rm_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.cp_seconds + self.rm_seconds

    def __str__(self) -> str:  # matches Table 2's "81 (76+5)" format
        return f"{self.total_seconds:.1f} ({self.cp_seconds:.1f}+{self.rm_seconds:.1f})"


class CpRmWorkload:
    def __init__(self, vfs, kernel, params: CpRmParams | None = None) -> None:
        self.vfs = vfs
        self.kernel = kernel
        self.params = params or CpRmParams()

    def _file_size(self, rng: DeterministicRandom) -> int:
        mean = self.params.mean_file_bytes
        return rng.randint(mean // 2, mean * 3 // 2)

    def setup(self) -> None:
        """Create the source tree — untimed, like having the Digital Unix
        sources already on disk before the benchmark starts."""
        charged = self.kernel.config.charge_time
        self.kernel.config.charge_time = False
        self.kernel.klib.charge_time = False
        try:
            rng = DeterministicRandom(self.params.seed)
            self.vfs.mkdir(self.params.src_root)
            for d in range(self.params.dirs):
                dir_path = f"{self.params.src_root}/dir{d:03d}"
                self.vfs.mkdir(dir_path)
                for f in range(self.params.files_per_dir):
                    fd = self.vfs.open(f"{dir_path}/file{f:03d}", create=True)
                    key = (self.params.seed << 20) ^ (d << 10) ^ f
                    self.vfs.write(fd, pattern_bytes(key, 0, self._file_size(rng)))
                    self.vfs.close(fd)
        finally:
            self.kernel.config.charge_time = charged
            self.kernel.klib.charge_time = charged

    def run(self) -> CpRmResult:
        clock = self.kernel.clock
        t0 = clock.now_ns
        self._copy_tree()
        t1 = clock.now_ns
        self._remove_tree()
        t2 = clock.now_ns
        return CpRmResult(cp_seconds=(t1 - t0) / 1e9, rm_seconds=(t2 - t1) / 1e9)

    def _copy_tree(self) -> None:
        p = self.params
        self.vfs.mkdir(p.dst_root)
        for d in sorted(self.vfs.readdir(p.src_root)):
            self.vfs.mkdir(f"{p.dst_root}/{d}")
            for name in sorted(self.vfs.readdir(f"{p.src_root}/{d}")):
                src = self.vfs.open(f"{p.src_root}/{d}/{name}")
                dst = self.vfs.open(f"{p.dst_root}/{d}/{name}", create=True)
                while True:
                    chunk = self.vfs.read(src, 64 * 1024)
                    if not chunk:
                        break
                    self.vfs.write(dst, chunk)
                self.vfs.close(src)
                self.vfs.close(dst)

    def _remove_tree(self) -> None:
        p = self.params
        for d in sorted(self.vfs.readdir(p.dst_root)):
            for name in sorted(self.vfs.readdir(f"{p.dst_root}/{d}")):
                self.vfs.unlink(f"{p.dst_root}/{d}/{name}")
            self.vfs.rmdir(f"{p.dst_root}/{d}")
        self.vfs.rmdir(p.dst_root)
