"""Sdet: the SPEC SDM multi-user software-development workload.

"Sdet is one of SPEC's SDM benchmarks and models a multi-user software
development environment."  Each concurrent *script* is a user performing
a mix of development activity — creating and editing files, compiling,
listing directories, cleaning up.  The scripts run interleaved
round-robin (our single-CPU stand-in for concurrency), and the reported
time covers all scripts to completion — Table 2 reports "Sdet (5
scripts)".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.hw.clock import NS_PER_MS
from repro.util.prng import DeterministicRandom, pattern_bytes


@dataclass
class SdetParams:
    root: str = "/sdet"
    scripts: int = 5
    files_per_script: int = 10
    file_bytes: int = 8 * 1024
    edits_per_file: int = 2
    #: CPU charge per "compile" step.
    compile_ms: int = 40
    #: Writes are issued in editor/compiler-sized chunks.
    write_chunk: int = 512
    seed: int = 2024


class SdetWorkload:
    def __init__(self, vfs, kernel, params: SdetParams | None = None) -> None:
        self.vfs = vfs
        self.kernel = kernel
        self.params = params or SdetParams()

    def _script_steps(self, script: int) -> Iterator:
        """One user's activity as a stream of thunks."""
        p = self.params
        rng = DeterministicRandom(p.seed + script * 7919)
        home = f"{p.root}/user{script}"

        yield lambda: self.vfs.mkdir(home)
        for f in range(p.files_per_script):
            path = f"{home}/prog{f}.c"
            key = (p.seed << 16) ^ (script << 8) ^ f

            def create(path=path, key=key):
                fd = self.vfs.open(path, create=True)
                data = pattern_bytes(key, 0, p.file_bytes)
                for start in range(0, len(data), p.write_chunk):
                    self.vfs.write(fd, data[start : start + p.write_chunk])
                self.vfs.close(fd)

            yield create
            for edit in range(p.edits_per_file):

                def edit_op(path=path, key=key, edit=edit, rng=rng):
                    fd = self.vfs.open(path)
                    offset = rng.randrange(p.file_bytes)
                    self.vfs.pwrite(fd, pattern_bytes(key ^ edit, offset, 512), offset)
                    self.vfs.close(fd)

                yield edit_op

            def compile_op(path=path, script=script, f=f):
                fd = self.vfs.open(path)
                data = self.vfs.read(fd, p.file_bytes)
                self.vfs.close(fd)
                if self.kernel.config.charge_time:
                    self.kernel.clock.consume(p.compile_ms * NS_PER_MS)
                out = self.vfs.open(f"{home}/prog{f}.o", create=True)
                obj = data[: len(data) // 2]
                for start in range(0, len(obj), p.write_chunk):
                    self.vfs.write(out, obj[start : start + p.write_chunk])
                self.vfs.close(out)

            yield compile_op

        def list_home():
            for name in self.vfs.readdir(home):
                self.vfs.stat(f"{home}/{name}")

        yield list_home

        def cleanup():
            for name in self.vfs.readdir(home):
                self.vfs.unlink(f"{home}/{name}")
            self.vfs.rmdir(home)

        yield cleanup

    def run(self) -> float:
        """Run all scripts round-robin; returns elapsed virtual seconds."""
        clock = self.kernel.clock
        start = clock.now_ns
        self.vfs.mkdir(self.params.root)
        streams = [self._script_steps(s) for s in range(self.params.scripts)]
        active = list(streams)
        while active:
            still = []
            for stream in active:
                step = next(stream, None)
                if step is not None:
                    step()
                    still.append(stream)
            active = still
        self.vfs.rmdir(self.params.root)
        return (clock.now_ns - start) / 1e9
